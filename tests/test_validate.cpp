#include "validate/exchange_validator.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/error.hpp"
#include "core/message.hpp"
#include "core/rank_state.hpp"
#include "core/vpt.hpp"
#include "core/wire.hpp"

namespace stfw::validate {
namespace {

using core::PayloadArena;
using core::Rank;
using core::StageMessage;
using core::Submessage;
using core::ValidationError;
using core::Vpt;

std::vector<std::byte> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::byte> b;
  b.reserve(vals.size());
  for (int v : vals) b.push_back(static_cast<std::byte>(v));
  return b;
}

/// Expects `fn` to throw a ValidationError whose check() is `check`.
template <typename Fn>
void expect_violation(const char* check, Fn&& fn) {
  try {
    fn();
    FAIL() << "expected ValidationError [" << check << "], nothing thrown";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.check(), check) << e.what();
  }
}

/// Drives a complete exchange over all ranks through StfwRankState with one
/// ExchangeValidator per rank hooked exactly as StfwCommunicator hooks it
/// (including the wire round-trip), then runs every rank's finish() against
/// the allgathered summaries. Returns nothing; throws on any violation.
void run_validated_exchange(const Vpt& vpt, double density, std::uint64_t seed,
                            std::size_t payload_len) {
  const Rank K = vpt.size();
  std::vector<core::StfwRankState> states;
  std::vector<ExchangeValidator> validators;
  std::vector<PayloadArena> arenas(static_cast<std::size_t>(K));
  std::vector<std::int64_t> sent_count(static_cast<std::size_t>(K), 0);
  states.reserve(static_cast<std::size_t>(K));
  validators.reserve(static_cast<std::size_t>(K));
  for (Rank r = 0; r < K; ++r) {
    states.emplace_back(vpt, r);
    validators.emplace_back(vpt, r);
  }

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (Rank i = 0; i < K; ++i)
    for (Rank j = 0; j < K; ++j) {
      if (i == j || coin(rng) >= density) continue;
      std::vector<std::byte> payload(payload_len);
      for (std::size_t b = 0; b < payload_len; ++b)
        payload[b] = static_cast<std::byte>((i * 31 + j * 7 + static_cast<Rank>(b)) & 0xff);
      const auto ii = static_cast<std::size_t>(i);
      validators[ii].on_seed(j, payload);
      const std::uint64_t off = arenas[ii].add(payload);
      states[ii].add_send(j, off, static_cast<std::uint32_t>(payload.size()));
    }

  std::vector<StageMessage> outbox;
  for (int stage = 0; stage < vpt.dim(); ++stage) {
    struct Wire {
      Rank from, to;
      std::vector<std::byte> bytes;
    };
    std::vector<Wire> in_flight;
    for (Rank r = 0; r < K; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      outbox.clear();
      states[rr].make_stage_outbox(stage, outbox);
      for (const StageMessage& m : outbox) {
        validators[rr].on_stage_send(stage, m);
        ++sent_count[rr];
        in_flight.push_back(Wire{m.from, m.to, core::serialize(m, arenas[rr])});
      }
    }
    for (const Wire& w : in_flight) {
      const auto to = static_cast<std::size_t>(w.to);
      const std::vector<Submessage> subs = core::deserialize(w.bytes, arenas[to]);
      validators[to].on_stage_recv(stage, w.from, subs);
      states[to].accept(stage, subs);
    }
    for (Rank r = 0; r < K; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      validators[rr].on_stage_complete(stage, states[rr].buffered_payload_bytes(),
                                       states[rr].buffered_submessage_count());
    }
  }

  std::vector<std::vector<std::byte>> summaries;
  summaries.reserve(static_cast<std::size_t>(K));
  for (Rank r = 0; r < K; ++r)
    summaries.push_back(validators[static_cast<std::size_t>(r)].summary_blob());
  for (Rank r = 0; r < K; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    validators[rr].finish(states[rr].delivered(), arenas[rr], sent_count[rr], summaries);
  }
}

TEST(ExchangeValidator, CleanExchangesPass) {
  EXPECT_NO_THROW(run_validated_exchange(Vpt({4, 2, 2}), 0.4, 1, 16));
  EXPECT_NO_THROW(run_validated_exchange(Vpt({8}), 0.6, 2, 8));
  EXPECT_NO_THROW(run_validated_exchange(Vpt({2, 2, 2, 2}), 0.3, 3, 0));
  // Uniform complete exchange: exercises the tight buffer/message bounds.
  EXPECT_NO_THROW(run_validated_exchange(Vpt({4, 4}), 1.0, 4, 8));
}

TEST(ExchangeValidator, RejectsNonNeighborStageSend) {
  const Vpt vpt({2, 2});
  ExchangeValidator v(vpt, 0);
  StageMessage m;
  m.from = 0;
  m.to = 3;  // differs from rank 0 in both dimensions
  expect_violation("neighbor-send", [&] { v.on_stage_send(0, m); });
}

TEST(ExchangeValidator, RejectsStageSendFromWrongOrigin) {
  const Vpt vpt({2, 2});
  ExchangeValidator v(vpt, 0);
  StageMessage m;
  m.from = 2;
  m.to = 1;
  expect_violation("send-origin", [&] { v.on_stage_send(0, m); });
}

TEST(ExchangeValidator, RejectsWrongRoutingDigit) {
  const Vpt vpt({2, 2});
  ExchangeValidator v(vpt, 0);
  StageMessage m;
  m.from = 0;
  m.to = 1;  // dimension-0 neighbor, digit 1
  // Submessage for rank 2 = (0,1): its dimension-0 digit is 0, not 1 — it
  // belongs in the buffer of another neighbor.
  m.subs.push_back(Submessage{0, 2, 0, 0});
  expect_violation("routing-digit", [&] { v.on_stage_send(0, m); });
}

TEST(ExchangeValidator, RejectsSelfAddressedSubmessageLeaving) {
  const Vpt vpt({2, 2});
  ExchangeValidator v(vpt, 0);
  StageMessage m;
  m.from = 0;
  m.to = 1;
  m.subs.push_back(Submessage{3, 0, 0, 0});  // addressed to the sender itself
  expect_violation("self-addressed", [&] { v.on_stage_send(0, m); });
}

TEST(ExchangeValidator, RejectsDimensionOrderViolationOnSend) {
  const Vpt vpt({2, 2, 2});
  // Rank 0 sends in stage 1 a submessage whose destination still differs
  // from it in dimension 0 — that hop should have happened in stage 0.
  ExchangeValidator v(vpt, 0);
  StageMessage m;
  m.from = 0;
  m.to = 2;  // dimension-1 neighbor
  m.subs.push_back(Submessage{0, 3, 0, 0});  // 3 = (1,1,0): differs in dim 0
  expect_violation("dimension-order-send", [&] { v.on_stage_send(1, m); });
}

TEST(ExchangeValidator, RejectsDuplicateStageMessage) {
  const Vpt vpt({2, 2});
  ExchangeValidator v(vpt, 0);
  StageMessage m;
  m.from = 0;
  m.to = 1;
  m.subs.push_back(Submessage{0, 1, 0, 0});
  EXPECT_NO_THROW(v.on_stage_send(0, m));
  expect_violation("duplicate-stage-message", [&] { v.on_stage_send(0, m); });
}

TEST(ExchangeValidator, RejectsOutOfOrderStages) {
  const Vpt vpt({2, 2});
  ExchangeValidator v(vpt, 0);
  StageMessage m1;
  m1.from = 0;
  m1.to = 2;  // dimension-1 neighbor
  m1.subs.push_back(Submessage{0, 2, 0, 0});
  EXPECT_NO_THROW(v.on_stage_send(1, m1));
  StageMessage m0;
  m0.from = 0;
  m0.to = 1;
  m0.subs.push_back(Submessage{0, 1, 0, 0});
  expect_violation("stage-order", [&] { v.on_stage_send(0, m0); });
}

TEST(ExchangeValidator, RejectsNonNeighborReceive) {
  const Vpt vpt({2, 2});
  ExchangeValidator v(vpt, 0);
  // Rank 2 differs from rank 0 in dimension 1; a stage-0 message from it is
  // misrouted by definition.
  const Submessage s{2, 0, 0, 0};
  expect_violation("neighbor-recv", [&] { v.on_stage_recv(0, 2, {&s, 1}); });
}

TEST(ExchangeValidator, RejectsCorruptedSubmessageHeader) {
  const Vpt vpt({2, 2});
  ExchangeValidator v(vpt, 0);
  // Wire-legal sender (rank 1, a dimension-0 neighbor) but the submessage
  // header claims final destination 3 = (1,1), whose dimension-0 digit does
  // not match the receiving rank — a corrupted or misrouted header.
  const Submessage s{1, 3, 0, 0};
  expect_violation("dimension-order-recv", [&] { v.on_stage_recv(0, 1, {&s, 1}); });
}

TEST(ExchangeValidator, RejectsSourceInconsistentWithHolder) {
  const Vpt vpt({2, 2});
  ExchangeValidator v(vpt, 0);
  // Submessage claims source 3 = (1,1); after a stage-0 hop its holder must
  // still match the source in dimension 1, which rank 0 does not.
  const Submessage s{3, 0, 0, 0};
  expect_violation("source-consistency", [&] { v.on_stage_recv(0, 1, {&s, 1}); });
}

/// finish() needs a full set of rank summaries; collects them from the given
/// validators (one per rank, in rank order).
std::vector<std::vector<std::byte>> blobs_of(std::span<ExchangeValidator> vs) {
  std::vector<std::vector<std::byte>> out;
  out.reserve(vs.size());
  for (const ExchangeValidator& v : vs) out.push_back(v.summary_blob());
  return out;
}

TEST(ExchangeValidator, RejectsStatsMismatch) {
  const Vpt vpt({2, 2});
  std::vector<ExchangeValidator> vs;
  for (Rank r = 0; r < 4; ++r) vs.emplace_back(vpt, r);
  PayloadArena arena;
  const auto blobs = blobs_of(vs);
  expect_violation("stats-mismatch", [&] { vs[0].finish({}, arena, 1, blobs); });
}

TEST(ExchangeValidator, RejectsLostMessage) {
  const Vpt vpt({2, 2});
  std::vector<ExchangeValidator> vs;
  for (Rank r = 0; r < 4; ++r) vs.emplace_back(vpt, r);
  // Rank 1 claims it seeded a message for rank 0; rank 0 delivered nothing.
  const auto payload = bytes_of({1, 2, 3, 4});
  vs[1].on_seed(0, payload);
  PayloadArena arena;
  const auto blobs = blobs_of(vs);
  expect_violation("payload-conservation", [&] { vs[0].finish({}, arena, 0, blobs); });
}

TEST(ExchangeValidator, RejectsCorruptedPayloadBits) {
  const Vpt vpt({2, 2});
  std::vector<ExchangeValidator> vs;
  for (Rank r = 0; r < 4; ++r) vs.emplace_back(vpt, r);
  vs[1].on_seed(0, bytes_of({1, 2, 3, 4}));
  // Rank 0 delivers a message of the right source/length whose bytes differ
  // in one bit — the digest comparison must notice.
  PayloadArena arena;
  const auto tampered = bytes_of({1, 2, 3, 5});
  const Submessage delivered{1, 0, arena.add(tampered), 4};
  const auto blobs = blobs_of(vs);
  try {
    vs[0].finish({&delivered, 1}, arena, 0, blobs);
    FAIL() << "expected ValidationError [payload-conservation]";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.check(), "payload-conservation");
    EXPECT_NE(std::string(e.what()).find("corrupted payload bits"), std::string::npos);
  }
}

TEST(ExchangeValidator, AcceptsConservedPayload) {
  const Vpt vpt({2, 2});
  std::vector<ExchangeValidator> vs;
  for (Rank r = 0; r < 4; ++r) vs.emplace_back(vpt, r);
  const auto payload = bytes_of({1, 2, 3, 4});
  vs[1].on_seed(0, payload);
  PayloadArena arena;
  const Submessage delivered{1, 0, arena.add(payload), 4};
  const auto blobs = blobs_of(vs);
  EXPECT_NO_THROW(vs[0].finish({&delivered, 1}, arena, 0, blobs));
}

TEST(ExchangeValidator, RejectsBufferBoundOverrun) {
  const Vpt vpt({2, 2});
  std::vector<ExchangeValidator> vs;
  for (Rank r = 0; r < 4; ++r) vs.emplace_back(vpt, r);
  // Uniform 8-byte payloads, one per ordered pair: the paper's bound says at
  // most K-1 = 3 submessages may ever reside in rank 0's forward buffers.
  const std::vector<std::byte> payload(8, std::byte{0x11});
  for (Rank d = 1; d < 4; ++d) vs[0].on_seed(d, payload);
  vs[0].on_stage_complete(0, 8 * 4, 4);  // inflated residency sample
  PayloadArena arena;
  const auto blobs = blobs_of(vs);
  try {
    vs[0].finish({}, arena, 0, blobs);
    FAIL() << "expected a ValidationError";
  } catch (const ValidationError& e) {
    // Conservation fires first (the seeded messages were never delivered) in
    // a real exchange; here the claims are unmet too, so accept either, but
    // the residency overrun must be reported when conservation is bypassed.
    EXPECT_TRUE(e.check() == "buffer-bound" || e.check() == "payload-conservation")
        << e.check();
  }
  // Isolate the buffer-bound check: no seeds anywhere, inflated sample only.
  std::vector<ExchangeValidator> ws;
  for (Rank r = 0; r < 4; ++r) ws.emplace_back(vpt, r);
  ws[0].on_stage_complete(0, 0, 4);
  const auto wblobs = blobs_of(ws);
  expect_violation("buffer-bound", [&] { ws[0].finish({}, arena, 0, wblobs); });
}

TEST(ExchangeValidator, StructuredDiagnosticsCarryContext) {
  const Vpt vpt({2, 2});
  ExchangeValidator v(vpt, 2);
  const Submessage s{1, 2, 0, 0};
  try {
    // Rank 1 = (1,0) differs from rank 2 = (0,1) in dimension 0, so it can
    // never be the sender of a stage-1 message to rank 2.
    v.on_stage_recv(1, 1, {&s, 1});
    FAIL() << "expected ValidationError";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.check(), "neighbor-recv");
    EXPECT_EQ(e.rank(), 2);
    EXPECT_EQ(e.stage(), 1);
    // Also catchable as the library's base error type.
    const core::Error& base = e;
    EXPECT_NE(std::string(base.what()).find("neighbor-recv"), std::string::npos);
  }
}

TEST(ExchangeValidator, PayloadDigestIsOrderIndependentButSizeSensitive) {
  const auto a = bytes_of({1, 2});
  const auto b = bytes_of({2, 1});
  EXPECT_NE(payload_digest(a), payload_digest(b));  // FNV-1a is order-sensitive per payload
  // The per-pair combination (sum) is what makes multiset comparison
  // order-independent: a+b == b+a trivially; duplicates do not cancel.
  EXPECT_EQ(payload_digest(a) + payload_digest(b), payload_digest(b) + payload_digest(a));
  EXPECT_NE(payload_digest(a) + payload_digest(a), payload_digest(a));
}

}  // namespace
}  // namespace stfw::validate
