#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "core/vpt.hpp"
#include "fault/fault_injector.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"
#include "verify/explore.hpp"
#include "verify/oracles.hpp"

/// Crash-schedule exploration (ISSUE 7): one rank is crashed survivably at a
/// chosen stage of the resilient exchange, and every explored interleaving
/// must leave the survivors with the degraded-mode contract intact —
/// exactly-once delivery among live pairs (check_exchange_delivery_survivors),
/// no fabricated or duplicated payloads even from the dead sender, and every
/// survivor observing the membership-epoch transition in its stats.

namespace stfw {
namespace {

using core::Rank;
using core::Vpt;

int schedule_count() {
  return static_cast<int>(core::env_int("STFW_VERIFY_SCHEDULES", 24));
}

std::vector<std::byte> encode(Rank src, Rank dest, std::uint32_t salt) {
  std::vector<std::byte> b(12);
  std::memcpy(b.data(), &src, 4);
  std::memcpy(b.data() + 4, &dest, 4);
  std::memcpy(b.data() + 8, &salt, 4);
  return b;
}

std::vector<std::vector<OutboundMessage>> two_message_sendsets(Rank K) {
  std::vector<std::vector<OutboundMessage>> sets(static_cast<std::size_t>(K));
  std::uint32_t salt = 0;
  for (Rank i = 0; i < K; ++i)
    for (Rank step = 1; step <= 2; ++step) {
      const Rank dest = (i + step) % K;
      sets[static_cast<std::size_t>(i)].push_back(
          OutboundMessage{dest, encode(i, dest, ++salt)});
    }
  return sets;
}

/// Body + oracle pair: each schedule runs one resilient exchange over `vpt`
/// with `crash_rank` crashing at `crash_stage`, then the oracle checks the
/// survivor contract against what actually happened on that schedule.
struct CrashHarness {
  Vpt vpt;
  int crash_rank;
  int crash_stage;
  std::vector<std::vector<OutboundMessage>> sends;

  verify::ExchangeObservation obs;
  std::vector<std::uint8_t> alive;
  std::vector<std::uint8_t> degraded;          // per rank: result.degraded
  std::vector<std::uint32_t> observed_epoch;   // per rank: stats.membership_epoch
  std::uint32_t epoch_before = 0;
  std::uint32_t epoch_after = 0;

  CrashHarness(Vpt v, int rank, int stage)
      : vpt(std::move(v)),
        crash_rank(rank),
        crash_stage(stage),
        sends(two_message_sendsets(vpt.size())) {}

  void run_once() {
    const Rank K = vpt.size();
    obs.reset(K);
    obs.sends = sends;
    alive.assign(static_cast<std::size_t>(K), 1);
    degraded.assign(static_cast<std::size_t>(K), 0);
    observed_epoch.assign(static_cast<std::size_t>(K), 0);

    runtime::Cluster cluster(K);
    epoch_before = cluster.membership().epoch();
    fault::FaultConfig fc;
    fc.crash_rank = crash_rank;
    fc.crash_stage = crash_stage;
    fc.crash_survivable = true;
    cluster.set_fault_injector(std::make_shared<fault::FaultInjector>(fc));
    cluster.run([&](runtime::Comm& comm) {
      const auto me = static_cast<std::size_t>(comm.rank());
      StfwCommunicator communicator(comm, vpt);
      ResilienceOptions opts;
      opts.retransmit_timeout = std::chrono::milliseconds(5);
      opts.stage_deadline = std::chrono::milliseconds(2000);
      opts.max_attempts = 8;
      const ResilientExchangeResult result =
          communicator.exchange_resilient(sends[me], opts);
      obs.delivered[me] = result.delivered;
      degraded[me] = result.degraded ? 1 : 0;
      observed_epoch[me] = communicator.last_stats().membership_epoch;
    });
    for (const Rank dead : cluster.membership().failed())
      alive[static_cast<std::size_t>(dead)] = 0;
    epoch_after = cluster.membership().epoch();
  }

  std::string check() const {
    if (alive[static_cast<std::size_t>(crash_rank)] != 0)
      return "rank " + std::to_string(crash_rank) + " was configured to crash "
             "but is still listed alive";
    if (epoch_after != epoch_before + 1)
      return "membership epoch moved " + std::to_string(epoch_before) + " -> " +
             std::to_string(epoch_after) + "; expected exactly one bump";
    for (Rank r = 0; r < vpt.size(); ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (alive[i] == 0) continue;
      if (degraded[i] == 0)
        return "survivor " + std::to_string(r) +
               " did not report a degraded exchange";
      if (observed_epoch[i] != epoch_after)
        return "survivor " + std::to_string(r) + " finished at epoch " +
               std::to_string(observed_epoch[i]) + ", cluster is at " +
               std::to_string(epoch_after);
    }
    return verify::check_exchange_delivery_survivors(obs, alive);
  }

  verify::ExploreBody body() {
    return [this] { run_once(); };
  }
  verify::ExploreOracle oracle() {
    return [this] { return check(); };
  }
};

TEST(VerifyCrash, ExhaustiveScheduleSweepAtOneCrashSite) {
  // The anchor sweep: K=4 with a real forwarding dimension, rank 1 dying at
  // stage 0, schedules enumerated exhaustively under a preemption bound. The
  // resilient path branches far more than the plain one (timers, acks,
  // failure notices), so the cap may truncate the space — every schedule
  // actually run must still be clean.
  CrashHarness h(Vpt({2, 2}), /*crash_rank=*/1, /*crash_stage=*/0);
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kExhaustive;
  cfg.max_preemptions = 1;
  cfg.max_schedules = 400;
  cfg.label = "crash-exhaustive-k4-r1s0";
  const verify::ExploreResult res = verify::explore(cfg, h.body(), h.oracle());
  EXPECT_TRUE(res.clean()) << res.summary();
  EXPECT_GT(res.schedules_run, 1u) << "no branch points were enumerated";
}

TEST(VerifyCrash, EveryCrashSiteSurvivesRandomSchedules) {
  // Exhaustive over crash *sites* — every (rank, stage) pair at K=4 — with a
  // small seeded random schedule sweep at each site.
  const Vpt vpt({2, 2});
  const int per_site = std::max(2, schedule_count() / 8);
  for (int rank = 0; rank < vpt.size(); ++rank) {
    for (int stage = 0; stage < vpt.dim(); ++stage) {
      CrashHarness h(vpt, rank, stage);
      verify::ExploreConfig cfg;
      cfg.mode = verify::ExploreConfig::Mode::kRandom;
      cfg.schedules = per_site;
      cfg.base_seed = static_cast<std::uint64_t>(1000 + rank * 16 + stage);
      cfg.label = "crash-site-r" + std::to_string(rank) + "s" + std::to_string(stage);
      const verify::ExploreResult res = verify::explore(cfg, h.body(), h.oracle());
      EXPECT_TRUE(res.clean()) << cfg.label << ": " << res.summary();
    }
  }
}

TEST(VerifyCrash, DeeperRandomSweepOnThreeDimensionalVpt) {
  // Three stages give the dead rank a transit role (traffic neither from nor
  // to it routes through it), exercising the relay detour under exploration.
  CrashHarness h(Vpt({2, 2, 2}), /*crash_rank=*/3, /*crash_stage=*/1);
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kRandom;
  cfg.schedules = std::min(schedule_count(), 12);
  cfg.base_seed = 77;
  cfg.label = "crash-random-k8-transit";
  const verify::ExploreResult res = verify::explore(cfg, h.body(), h.oracle());
  EXPECT_TRUE(res.clean()) << res.summary();
  if (!res.replayed) {  // STFW_VERIFY_SCHEDULE narrows the sweep to one seed
    EXPECT_EQ(res.schedules_run, static_cast<std::uint64_t>(cfg.schedules));
  }
}

}  // namespace
}  // namespace stfw
