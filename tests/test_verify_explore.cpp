#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/vpt.hpp"
#include "fault/fault_injector.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"
#include "verify/explore.hpp"
#include "verify/oracles.hpp"

/// Schedule-exploration tests: the exhaustive small-config sweep (K=4, n=2
/// messages per rank, preemption bound 2) and seeded random sweeps, with the
/// protocol oracles checked at every terminal state; deadlock detection
/// cross-checked against the runtime's own watchdog; no frame loss under an
/// injected drop fault in resilient mode.

namespace stfw {
namespace {

using core::Rank;
using core::Vpt;

/// Random-sweep width: CI sets STFW_VERIFY_SCHEDULES=64, the local default
/// keeps the suite quick.
int schedule_count() {
  return static_cast<int>(core::env_int("STFW_VERIFY_SCHEDULES", 24));
}

std::vector<std::byte> encode(Rank src, Rank dest, std::uint32_t salt) {
  std::vector<std::byte> b(12);
  std::memcpy(b.data(), &src, 4);
  std::memcpy(b.data() + 4, &dest, 4);
  std::memcpy(b.data() + 8, &salt, 4);
  return b;
}

/// The issue's small config: K ranks, each sending n = 2 messages (to its
/// two successors), all routed through the store-and-forward exchange.
std::vector<std::vector<OutboundMessage>> two_message_sendsets(Rank K) {
  std::vector<std::vector<OutboundMessage>> sets(static_cast<std::size_t>(K));
  std::uint32_t salt = 0;
  for (Rank i = 0; i < K; ++i)
    for (Rank step = 1; step <= 2; ++step) {
      const Rank dest = (i + step) % K;
      sets[static_cast<std::size_t>(i)].push_back(
          OutboundMessage{dest, encode(i, dest, ++salt)});
    }
  return sets;
}

/// Body + oracle pair running one exchange over `vpt` per schedule and
/// recording the observation the delivery oracle checks.
struct ExchangeHarness {
  Vpt vpt;
  std::vector<std::vector<OutboundMessage>> sends;
  verify::ExchangeObservation obs;

  explicit ExchangeHarness(Vpt v)
      : vpt(std::move(v)), sends(two_message_sendsets(vpt.size())) {}

  void run_once() {
    const Rank K = vpt.size();
    obs.reset(K);
    obs.sends = sends;
    runtime::Cluster cluster(K);
    cluster.run([&](runtime::Comm& comm) {
      StfwCommunicator communicator(comm, vpt);
      obs.delivered[static_cast<std::size_t>(comm.rank())] =
          communicator.exchange(sends[static_cast<std::size_t>(comm.rank())]);
    });
  }

  verify::ExploreBody body() {
    return [this] { run_once(); };
  }
  verify::ExploreOracle oracle() {
    return [this] { return verify::check_exchange_delivery(obs); };
  }
};

TEST(VerifyExplore, ExhaustiveSmallConfigIsCleanAndBranches) {
  ExchangeHarness h(Vpt::direct(4));
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kExhaustive;
  cfg.max_preemptions = 2;
  cfg.max_schedules = 20000;
  cfg.label = "exhaustive-k4n2";
  const verify::ExploreResult res = verify::explore(cfg, h.body(), h.oracle());
  EXPECT_TRUE(res.clean()) << res.summary();
  EXPECT_FALSE(res.truncated) << "preemption-bounded space not exhausted after "
                              << res.schedules_run << " schedules";
  // A sweep that never branched would be one schedule checked once.
  EXPECT_GT(res.schedules_run, 1u) << "no branch points were enumerated";
}

TEST(VerifyExplore, BarrierFreeOverlapExhaustiveSweepIsClean) {
  // Tentpole sweep: the dependency-driven (barrier-free) stage progression
  // over a forwarding VPT with the overlap hook armed — no global barrier
  // delimits the stages, so this exhaustively checks that per-neighbor frame
  // counting alone keeps delivery exactly-once and payload-conserving on
  // every preemption-bounded interleaving.
  const Vpt vpt = Vpt::balanced(4, 2);
  const auto sends = two_message_sendsets(4);
  verify::ExchangeObservation obs;
  std::atomic<std::int64_t> hook_calls{0};
  const auto body = [&] {
    obs.reset(4);
    obs.sends = sends;
    runtime::Cluster cluster(4);
    cluster.run([&](runtime::Comm& comm) {
      StfwCommunicator communicator(comm, vpt);
      const OverlapHook hook = [&] { hook_calls.fetch_add(1); };
      obs.delivered[static_cast<std::size_t>(comm.rank())] =
          communicator.exchange(sends[static_cast<std::size_t>(comm.rank())], hook);
    });
  };
  const auto oracle = [&] { return verify::check_exchange_delivery(obs); };
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kExhaustive;
  cfg.max_preemptions = 2;
  cfg.max_schedules = 20000;
  cfg.label = "barrier-free-overlap-k4n2";
  const verify::ExploreResult res = verify::explore(cfg, body, oracle);
  EXPECT_TRUE(res.clean()) << res.summary();
  EXPECT_GT(res.schedules_run, 1u) << "no branch points were enumerated";
  EXPECT_GT(hook_calls.load(), 0);
  EXPECT_EQ(hook_calls.load() % 4, 0) << "hook must fire exactly once per rank per schedule";
}

TEST(VerifyExplore, LockfreeMailboxExhaustiveSweepIsClean) {
  // The zero-copy/lock-free PR sweep: the same K=4, n=2, <=2-preemption
  // exhaustive space as ExhaustiveSmallConfigIsCleanAndBranches, but with the
  // MPSC ring forced on and shrunk to capacity 2 so almost every post races
  // the consumer's recycle and the overflow channel engages. The verify hooks
  // on publish/pop give the engine the send->recv happens-before edges, so a
  // missing edge in the lock-free path would surface as a race or a delivery
  // oracle failure on some interleaving.
  ExchangeHarness h(Vpt::direct(4));
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kExhaustive;
  cfg.max_preemptions = 2;
  cfg.max_schedules = 20000;
  cfg.label = "lockfree-exhaustive-k4n2";
  const auto body = [&h] {
    const Rank K = h.vpt.size();
    h.obs.reset(K);
    h.obs.sends = h.sends;
    runtime::Cluster cluster(K);
    cluster.set_lockfree_mailbox(true);
    cluster.set_mailbox_ring_capacity(2);
    cluster.run([&](runtime::Comm& comm) {
      EXPECT_TRUE(cluster.lockfree_active());
      StfwCommunicator communicator(comm, h.vpt);
      h.obs.delivered[static_cast<std::size_t>(comm.rank())] =
          communicator.exchange(h.sends[static_cast<std::size_t>(comm.rank())]);
    });
  };
  const verify::ExploreResult res = verify::explore(cfg, body, h.oracle());
  EXPECT_TRUE(res.clean()) << res.summary();
  EXPECT_FALSE(res.truncated) << "preemption-bounded space not exhausted after "
                              << res.schedules_run << " schedules";
  EXPECT_GT(res.schedules_run, 1u) << "no branch points were enumerated";
}

TEST(VerifyExplore, LockfreeMailboxSeededRandomSweepIsClean) {
  // Wider random sweep over the forwarding VPT with the lock-free mailbox on:
  // store-and-forward stages stress the per-source ticket gate (forwarded
  // frames from several intermediates interleave at each consumer).
  ExchangeHarness h(Vpt::balanced(4, 2));
  const auto body = [&h] {
    const Rank K = h.vpt.size();
    h.obs.reset(K);
    h.obs.sends = h.sends;
    runtime::Cluster cluster(K);
    cluster.set_lockfree_mailbox(true);
    cluster.set_mailbox_ring_capacity(2);
    cluster.run([&](runtime::Comm& comm) {
      StfwCommunicator communicator(comm, h.vpt);
      h.obs.delivered[static_cast<std::size_t>(comm.rank())] =
          communicator.exchange(h.sends[static_cast<std::size_t>(comm.rank())]);
    });
  };
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kRandom;
  cfg.schedules = std::max(schedule_count(), 64);
  cfg.base_seed = 7;
  cfg.label = "lockfree-random-k4-forwarding";
  const verify::ExploreResult res = verify::explore(cfg, body, h.oracle());
  EXPECT_TRUE(res.clean()) << res.summary();
  EXPECT_EQ(res.schedules_run, static_cast<std::uint64_t>(cfg.schedules));
}

TEST(VerifyExplore, SeededRandomSchedulesOverForwardingVptAreClean) {
  // balanced(4, 2) routes through intermediate ranks — the store-and-forward
  // path proper, not just direct sends.
  ExchangeHarness h(Vpt::balanced(4, 2));
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kRandom;
  cfg.schedules = schedule_count();
  cfg.base_seed = 1;
  cfg.label = "random-k4-forwarding";
  const verify::ExploreResult res = verify::explore(cfg, h.body(), h.oracle());
  EXPECT_TRUE(res.clean()) << res.summary();
  EXPECT_EQ(res.schedules_run, static_cast<std::uint64_t>(cfg.schedules));
}

TEST(VerifyExplore, ResilientModeLosesNoFramesUnderDrops) {
  const Rank K = 3;
  const auto sends = two_message_sendsets(K);
  verify::ExchangeObservation obs;
  std::atomic<int> unrecovered{0};

  const auto body = [&] {
    obs.reset(K);
    obs.sends = sends;
    runtime::Cluster cluster(K);
    fault::FaultConfig fc;
    fc.seed = 1234;
    fc.drop_prob = 0.15;
    cluster.set_fault_injector(std::make_shared<fault::FaultInjector>(fc));
    cluster.run([&](runtime::Comm& comm) {
      StfwCommunicator communicator(comm, Vpt::direct(K));
      ResilienceOptions opts;
      opts.retransmit_timeout = std::chrono::milliseconds(5);
      opts.stage_deadline = std::chrono::milliseconds(500);
      const ResilientExchangeResult result =
          communicator.exchange_resilient(sends[static_cast<std::size_t>(comm.rank())],
                                          opts);
      obs.delivered[static_cast<std::size_t>(comm.rank())] = result.delivered;
      if (!result.fully_recovered) unrecovered.fetch_add(1);
    });
  };
  // No-frame-loss oracle: whenever the protocol claims full recovery, the
  // delivered multiset must equal the posted multiset despite the drops.
  const auto oracle = [&]() -> std::string {
    if (unrecovered.load() != 0) return {};  // loss was *reported*, not silent
    return verify::check_exchange_delivery(obs);
  };

  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kRandom;
  cfg.schedules = std::min(schedule_count(), 8);
  cfg.base_seed = 100;
  cfg.label = "resilient-drops";
  const verify::ExploreResult res = verify::explore(cfg, body, oracle);
  EXPECT_TRUE(res.clean()) << res.summary();
}

TEST(VerifyExplore, UnmatchedRecvIsReportedAsDeadlock) {
  // Rank 0 receives a message nobody sends; no watchdog is armed, so the
  // engine itself must detect the terminal block and abort the schedule.
  const auto body = [] {
    runtime::Cluster cluster(2);
    cluster.run([](runtime::Comm& comm) {
      if (comm.rank() == 0) comm.recv(1, /*tag=*/9);
    });
  };
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kRandom;
  cfg.schedules = 2;
  cfg.base_seed = 5;
  cfg.label = "deadlock-no-watchdog";
  const verify::ExploreResult res = verify::explore(cfg, body);
  ASSERT_FALSE(res.failures.empty()) << "stuck schedule not flagged";
  for (const verify::ScheduleFailure& f : res.failures) {
    EXPECT_EQ(f.kind, "deadlock") << f.to_string();
    EXPECT_NE(f.detail.find("deadlock"), std::string::npos) << f.detail;
  }
}

TEST(VerifyExplore, WatchdogDeadlockErrorFiresDeterministically) {
  // Same stuck receive, but with the runtime watchdog armed: under the
  // logical clock its window elapses via monitor ticks, so every schedule
  // must surface core::DeadlockError through the normal runtime path before
  // the engine has anything to abort.
  std::atomic<int> watchdog_fired{0};
  const auto body = [&] {
    runtime::Cluster cluster(2);
    cluster.set_watchdog(std::chrono::milliseconds(50));
    try {
      cluster.run([](runtime::Comm& comm) {
        if (comm.rank() == 0) comm.recv(1, /*tag=*/9);
      });
    } catch (const core::DeadlockError& e) {
      watchdog_fired.fetch_add(1);
      EXPECT_NE(std::string(e.what()).find("rank 0"), std::string::npos) << e.what();
    }
  };
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kRandom;
  cfg.schedules = 4;
  cfg.base_seed = 11;
  cfg.label = "deadlock-watchdog";
  const verify::ExploreResult res = verify::explore(cfg, body);
  EXPECT_TRUE(res.clean()) << res.summary();
  EXPECT_EQ(watchdog_fired.load(), 4)
      << "watchdog missed the deadlock on some schedules";
}

}  // namespace
}  // namespace stfw
