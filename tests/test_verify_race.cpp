#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "runtime/comm.hpp"
#include "verify/engine.hpp"
#include "verify/explore.hpp"
#include "verify_doubles.hpp"

/// Race-detector tests: a seeded unsynchronized counter, the reintroduced
/// pre-exchange-plan barrier-rearm locking hole (both must be flagged with a
/// two-site report), and clean counterparts (the corrected barrier and the
/// production mailbox path) that must stay silent.

namespace stfw {
namespace {

using verify::RunReport;

bool race_between(const RunReport& rep, const std::string& label_a,
                  const std::string& label_b) {
  for (const verify::RaceReport& r : rep.races) {
    const std::string a = r.site_a;
    const std::string b = r.site_b;
    if ((a.find(label_a) != std::string::npos && b.find(label_b) != std::string::npos) ||
        (a.find(label_b) != std::string::npos && b.find(label_a) != std::string::npos))
      return true;
  }
  return false;
}

int counter_unsync = 0;  // addressable shared state for the seeded race

TEST(VerifyRace, SeededUnsyncCounterFlaggedWithTwoSites) {
  counter_unsync = 0;
  const RunReport rep = verify::run_traced(1, [] {
    verify::run_threads(2, [](int i) {
      if (i == 0) {
        STFW_VERIFY_WRITE(&counter_unsync, "unsync increment a");
        ++counter_unsync;
      } else {
        STFW_VERIFY_WRITE(&counter_unsync, "unsync increment b");
        ++counter_unsync;
      }
    });
  });
  ASSERT_FALSE(rep.races.empty()) << "unsynchronized writes not flagged";
  EXPECT_TRUE(race_between(rep, "unsync increment a", "unsync increment b"))
      << rep.races.front().to_string();
}

TEST(VerifyRace, LeakyBarrierRearmFlaggedWithBothSites) {
  const RunReport rep = verify::run_traced(1, [] {
    verify_test::RearmBarrier barrier(2, /*leaky=*/true);
    verify::run_threads(2, [&](int i) {
      barrier.arrive();
      // Rank 0 races ahead into the next round while the releaser is still
      // rearming outside the mutex — the exact shape of the original bug.
      if (i == 0) barrier.arrive_next_round();
    });
  });
  ASSERT_FALSE(rep.races.empty()) << "leaky rearm not flagged; trace:\n" << rep.trace;
  EXPECT_TRUE(race_between(rep, "unlocked rearm", "next-round arrive"))
      << "race found but not between the rearm and the next arrival: "
      << rep.races.front().to_string();
  for (const verify::RaceReport& r : rep.races) {
    EXPECT_NE(std::string(r.site_a).find("verify_doubles.hpp:"), std::string::npos)
        << r.site_a;
    EXPECT_NE(std::string(r.site_b).find("verify_doubles.hpp:"), std::string::npos)
        << r.site_b;
  }
  EXPECT_FALSE(rep.aborted) << rep.abort_reason;
}

TEST(VerifyRace, CorrectedBarrierRearmIsClean) {
  const RunReport rep = verify::run_traced(1, [] {
    verify_test::RearmBarrier barrier(2, /*leaky=*/false);
    verify::run_threads(2, [&](int i) {
      barrier.arrive();
      if (i == 0) barrier.arrive_next_round();
    });
  });
  EXPECT_TRUE(rep.races.empty())
      << "false positive on the locked rearm: " << rep.races.front().to_string();
  EXPECT_FALSE(rep.aborted) << rep.abort_reason;
}

TEST(VerifyRace, CleanMailboxPathIsClean) {
  // The production send/recv/barrier path, fully instrumented: the mailbox
  // mutex and send→recv edges must order every tagged access (a report here
  // is a detector false positive or a real runtime race).
  const RunReport rep = verify::run_traced(1, [] {
    runtime::Cluster cluster(2);
    cluster.run([](runtime::Comm& comm) {
      const int peer = 1 - comm.rank();
      std::vector<std::byte> payload(8, static_cast<std::byte>(comm.rank()));
      comm.send(peer, /*tag=*/7, payload);
      const runtime::Message got = comm.recv(peer, /*tag=*/7);
      ASSERT_EQ(got.data.size(), 8u);
      comm.barrier();
    });
  });
  EXPECT_TRUE(rep.races.empty()) << rep.races.front().to_string() << "\n"
                                 << rep.trace;
  EXPECT_FALSE(rep.aborted) << rep.abort_reason << "; " << rep.blocked_state;
  EXPECT_GT(rep.steps, 0u) << "scheduler never engaged";
}

}  // namespace
}  // namespace stfw
