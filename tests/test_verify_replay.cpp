#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "runtime/comm.hpp"
#include "verify/explore.hpp"

/// Deterministic-replay tests: the event trace of a schedule is a pure
/// function of its seed, and STFW_VERIFY_SCHEDULE=<seed> re-runs exactly
/// that schedule (the workflow printed in every failure report).

namespace stfw {
namespace {

/// A small all-to-all over the raw runtime: three ranks, every pair
/// exchanges one message, then a barrier. Enough concurrent senders that
/// schedules genuinely branch.
void all_to_all_body() {
  runtime::Cluster cluster(3);
  cluster.run([](runtime::Comm& comm) {
    const int me = comm.rank();
    for (int peer = 0; peer < comm.size(); ++peer) {
      if (peer == me) continue;
      comm.send(peer, /*tag=*/3, std::vector<std::byte>(4, static_cast<std::byte>(me)));
    }
    for (int peer = 0; peer < comm.size(); ++peer) {
      if (peer == me) continue;
      const runtime::Message got = comm.recv(peer, /*tag=*/3);
      ASSERT_EQ(got.data.size(), 4u);
      ASSERT_EQ(got.data.front(), static_cast<std::byte>(peer));
    }
    comm.barrier();
  });
}

TEST(VerifyReplay, SameSeedYieldsByteIdenticalTrace) {
  const verify::RunReport first = verify::run_traced(42, all_to_all_body);
  const verify::RunReport second = verify::run_traced(42, all_to_all_body);
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace) << "same seed, diverging schedules";
  EXPECT_TRUE(first.races.empty());
  EXPECT_FALSE(first.aborted) << first.abort_reason;
}

TEST(VerifyReplay, DifferentSeedsExploreDifferentSchedules) {
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    distinct.insert(verify::run_traced(seed, all_to_all_body).trace);
  // Were every seed to produce one schedule, the "random schedules" sweep
  // would be 64 copies of the same run.
  EXPECT_GT(distinct.size(), 1u) << "seeds do not influence the schedule";
}

TEST(VerifyReplay, EnvScheduleReplaysThePrintedSeed) {
  const verify::RunReport reference = verify::run_traced(7, all_to_all_body);
  ASSERT_FALSE(reference.trace.empty());

  ASSERT_EQ(setenv("STFW_VERIFY_SCHEDULE", "7", /*overwrite=*/1), 0);
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::kRandom;
  cfg.schedules = 16;  // must be ignored: the env pins one seed
  cfg.base_seed = 1000;
  cfg.label = "replay-test";
  const verify::ExploreResult res = verify::explore(cfg, all_to_all_body);
  unsetenv("STFW_VERIFY_SCHEDULE");

  EXPECT_TRUE(res.replayed);
  EXPECT_EQ(res.schedules_run, 1u);
  EXPECT_TRUE(res.clean()) << res.summary();
  EXPECT_EQ(res.last_trace, reference.trace)
      << "STFW_VERIFY_SCHEDULE=7 did not reproduce seed 7's schedule";
}

}  // namespace
}  // namespace stfw
