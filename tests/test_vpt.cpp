#include "core/vpt.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "core/error.hpp"

namespace stfw::core {
namespace {

TEST(Vpt, DirectTopologyIsSingleDimension) {
  const Vpt t = Vpt::direct(8);
  EXPECT_EQ(t.dim(), 1);
  EXPECT_EQ(t.size(), 8);
  EXPECT_EQ(t.dim_size(0), 8);
  EXPECT_EQ(t.max_message_count_bound(), 7);
}

TEST(Vpt, HypercubeHasLogDimensions) {
  const Vpt t = Vpt::hypercube(64);
  EXPECT_EQ(t.dim(), 6);
  EXPECT_EQ(t.size(), 64);
  for (int d = 0; d < t.dim(); ++d) EXPECT_EQ(t.dim_size(d), 2);
  EXPECT_EQ(t.max_message_count_bound(), 6);
}

TEST(Vpt, ExplicitDimensions) {
  const Vpt t({4, 2, 8});
  EXPECT_EQ(t.size(), 64);
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.dim_size(0), 4);
  EXPECT_EQ(t.dim_size(1), 2);
  EXPECT_EQ(t.dim_size(2), 8);
  EXPECT_EQ(t.to_string(), "T_3(4,2,8)");
}

TEST(Vpt, RejectsBadDimensions) {
  EXPECT_THROW(Vpt({}), Error);
  EXPECT_THROW(Vpt({4, 1}), Error);   // k_d >= 2 for n > 1
  EXPECT_THROW(Vpt({0}), Error);
  EXPECT_NO_THROW(Vpt({1}));          // T_1(1) is a degenerate but legal VPT
}

TEST(Vpt, CoordinateRoundTrip) {
  const Vpt t({4, 4, 4});
  for (Rank r = 0; r < t.size(); ++r) {
    const auto c = t.coords_of(r);
    EXPECT_EQ(t.rank_of(c), r);
    for (int d = 0; d < t.dim(); ++d) EXPECT_EQ(c[static_cast<std::size_t>(d)], t.coord(r, d));
  }
}

TEST(Vpt, PaperFigure2Neighborhoods) {
  // T_3(4,4,4): the paper's Figure 2. Its example uses 1-based coordinates
  // (P^3, P^2, P^1) = (3,2,3); ours are 0-based with digit 0 first:
  // (P^1-1, P^2-1, P^3-1) = (2,1,2).
  const Vpt t({4, 4, 4});
  const int pi_coords[3] = {2, 1, 2};
  const Rank pi = t.rank_of(pi_coords);
  // (3,2,1) differs in the third dimension (our digit 2).
  const int pk_coords[3] = {2, 1, 0};
  // (1,2,3) differs in the first dimension (our digit 0).
  const int pl_coords[3] = {0, 1, 2};
  // (3,4,3) differs in the second dimension (our digit 1).
  const int pm_coords[3] = {2, 3, 2};
  const Rank pk = t.rank_of(pk_coords);
  const Rank pl = t.rank_of(pl_coords);
  const Rank pm = t.rank_of(pm_coords);

  auto in_dim = [&](Rank a, Rank b, int d) {
    const auto nb = t.neighbors(a, d);
    return std::find(nb.begin(), nb.end(), b) != nb.end();
  };
  EXPECT_TRUE(in_dim(pi, pk, 2));
  EXPECT_TRUE(in_dim(pi, pl, 0));
  EXPECT_TRUE(in_dim(pi, pm, 1));
  EXPECT_FALSE(in_dim(pi, pk, 0));
  EXPECT_FALSE(in_dim(pi, pk, 1));
}

TEST(Vpt, NeighborsAreCompleteGroups) {
  const Vpt t({4, 2, 8});
  for (Rank r = 0; r < t.size(); ++r) {
    for (int d = 0; d < t.dim(); ++d) {
      const auto nb = t.neighbors(r, d);
      ASSERT_EQ(static_cast<int>(nb.size()), t.dim_size(d) - 1);
      for (Rank n : nb) {
        EXPECT_NE(n, r);
        EXPECT_EQ(t.hamming(r, n), 1);
        EXPECT_EQ(t.first_diff_dim(r, n), d);
        // Symmetry: r is also n's neighbor in dimension d.
        const auto back = t.neighbors(n, d);
        EXPECT_NE(std::find(back.begin(), back.end(), r), back.end());
      }
    }
  }
}

TEST(Vpt, WithCoordReplacesOneDigit) {
  const Vpt t({4, 4, 4});
  const Rank r = 37;
  for (int d = 0; d < 3; ++d)
    for (int v = 0; v < 4; ++v) {
      const Rank s = t.with_coord(r, d, v);
      EXPECT_EQ(t.coord(s, d), v);
      for (int c = 0; c < 3; ++c) {
        if (c != d) {
          EXPECT_EQ(t.coord(s, c), t.coord(r, c));
        }
      }
    }
}

TEST(Vpt, HammingMatchesCoordDifferences) {
  const Vpt t({2, 4, 2, 4});
  for (Rank a = 0; a < t.size(); a += 7)
    for (Rank b = 0; b < t.size(); b += 5) {
      int expected = 0;
      for (int d = 0; d < t.dim(); ++d) expected += t.coord(a, d) != t.coord(b, d);
      EXPECT_EQ(t.hamming(a, b), expected);
    }
}

TEST(Vpt, FirstDiffDimAfter) {
  const Vpt t({4, 4, 4});
  const int a_coords[3] = {1, 2, 3};
  const int b_coords[3] = {1, 0, 2};
  const Rank a = t.rank_of(a_coords);
  const Rank b = t.rank_of(b_coords);
  EXPECT_EQ(t.first_diff_dim(a, b), 1);
  EXPECT_EQ(t.first_diff_dim_after(a, b, 1), 2);
  EXPECT_EQ(t.first_diff_dim_after(a, b, 2), -1);
  EXPECT_EQ(t.first_diff_dim(a, a), -1);
}

// --- Section 5 balanced scheme -------------------------------------------

struct BalancedCase {
  core::Rank K;
  int n;
};

class VptBalanced : public ::testing::TestWithParam<BalancedCase> {};

TEST_P(VptBalanced, MatchesSection5Scheme) {
  const auto [K, n] = GetParam();
  const Vpt t = Vpt::balanced(K, n);
  EXPECT_EQ(t.size(), K);
  EXPECT_EQ(t.dim(), n);
  const int lg = floor_log2(K);
  const int q = lg / n;
  const int rem = lg % n;
  for (int d = 0; d < n; ++d)
    EXPECT_EQ(t.dim_size(d), 1 << (d < rem ? q + 1 : q)) << "dim " << d;
  // No two dimension sizes differ by more than a factor of 2.
  const auto [mn, mx] = std::minmax_element(t.dim_sizes().begin(), t.dim_sizes().end());
  EXPECT_LE(*mx, 2 * *mn);
}

TEST_P(VptBalanced, IsOptimalMaxMessageCountAmongFactorizations) {
  const auto [K, n] = GetParam();
  const Vpt t = Vpt::balanced(K, n);
  int best = t.max_message_count_bound();
  for (const auto& f : all_factorizations(K)) {
    if (static_cast<int>(f.size()) != n) continue;
    int bound = 0;
    for (int kd : f) bound += kd - 1;
    EXPECT_GE(bound, best) << "factorization beats the Section 5 scheme";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VptBalanced,
                         ::testing::Values(BalancedCase{16, 1}, BalancedCase{16, 2},
                                           BalancedCase{16, 3}, BalancedCase{16, 4},
                                           BalancedCase{64, 2}, BalancedCase{64, 3},
                                           BalancedCase{64, 5}, BalancedCase{64, 6},
                                           BalancedCase{256, 2}, BalancedCase{256, 3},
                                           BalancedCase{256, 5}, BalancedCase{256, 8},
                                           BalancedCase{512, 4}, BalancedCase{512, 9},
                                           BalancedCase{4096, 7}, BalancedCase{16384, 14}));

TEST(Vpt, BalancedRejectsBadArguments) {
  EXPECT_THROW(Vpt::balanced(100, 2), Error);  // not a power of two
  EXPECT_THROW(Vpt::balanced(64, 7), Error);   // n > lg2 K
  EXPECT_THROW(Vpt::balanced(64, 0), Error);
}

TEST(Vpt, AllFactorizationsOf16) {
  const auto fs = all_factorizations(16);
  // 16 = 16, 2*8, 4*4, 2*2*4, 2*2*2*2.
  EXPECT_EQ(fs.size(), 5u);
  for (const auto& f : fs) {
    Rank prod = 1;
    for (int k : f) prod *= k;
    EXPECT_EQ(prod, 16);
    EXPECT_TRUE(std::is_sorted(f.begin(), f.end()));
  }
}

TEST(Vpt, MaxMessageCountBoundSpectrum) {
  // The Section 4 spectrum: K-1 for n=1 down to lg2 K for the hypercube.
  const Rank K = 256;
  EXPECT_EQ(Vpt::direct(K).max_message_count_bound(), K - 1);
  EXPECT_EQ(Vpt::balanced(K, 2).max_message_count_bound(), 2 * (16 - 1));
  EXPECT_EQ(Vpt::hypercube(K).max_message_count_bound(), 8);
  int prev = Vpt::direct(K).max_message_count_bound();
  for (int n = 2; n <= 8; ++n) {
    const int bound = Vpt::balanced(K, n).max_message_count_bound();
    EXPECT_LT(bound, prev) << "bound must strictly shrink with dimension at K=256";
    prev = bound;
  }
}

TEST(Vpt, BalancedAnySupportsNonPowersOfTwo) {
  // The paper's "easily extended" claim, implemented.
  const Vpt t12 = Vpt::balanced_any(12, 2);
  EXPECT_EQ(t12.size(), 12);
  EXPECT_EQ(t12.dim(), 2);
  EXPECT_EQ(t12.dim_sizes(), (std::vector<int>{3, 4}));  // best 2-way split of 12

  const Vpt t360 = Vpt::balanced_any(360, 3);
  EXPECT_EQ(t360.size(), 360);
  EXPECT_EQ(t360.dim(), 3);
  // Greedy factor balancing gets within a factor of 2 across dimensions.
  const auto [mn, mx] = std::minmax_element(t360.dim_sizes().begin(), t360.dim_sizes().end());
  EXPECT_LE(*mx, 2 * *mn + 2);

  // Matches the power-of-two scheme's bound quality.
  EXPECT_EQ(Vpt::balanced_any(256, 4).max_message_count_bound(),
            Vpt::balanced(256, 4).max_message_count_bound());

  EXPECT_THROW(Vpt::balanced_any(6, 3), core::Error);   // only two prime factors
  EXPECT_THROW(Vpt::balanced_any(1, 1), core::Error);
  // Primes only admit n = 1.
  const Vpt t13 = Vpt::balanced_any(13, 1);
  EXPECT_EQ(t13.dim(), 1);
  EXPECT_THROW(Vpt::balanced_any(13, 2), core::Error);
}

TEST(Vpt, BalancedAnyIsNearOptimalAmongFactorizations) {
  for (Rank K : {Rank{12}, Rank{24}, Rank{60}, Rank{96}, Rank{100}}) {
    for (int n = 1; n <= 3; ++n) {
      Vpt candidate = Vpt::direct(2);
      try {
        candidate = Vpt::balanced_any(K, n);
      } catch (const Error&) {
        continue;  // not enough prime factors for this n
      }
      int best = candidate.max_message_count_bound();
      for (const auto& f : all_factorizations(K)) {
        if (static_cast<int>(f.size()) != n) continue;
        int bound = 0;
        for (int kd : f) bound += kd - 1;
        // Greedy is a heuristic; allow slack of one smallest factor.
        EXPECT_LE(best, bound + 2) << "K=" << K << " n=" << n;
      }
    }
  }
}

TEST(Vpt, NodeAwareTwoLevelTopology) {
  const Vpt t = Vpt::node_aware(128, 16);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.dim_size(0), 16);
  EXPECT_EQ(t.dim_size(1), 8);
  EXPECT_EQ(t.max_message_count_bound(), 15 + 7);
  EXPECT_THROW(Vpt::node_aware(128, 3), Error);    // does not divide
  EXPECT_THROW(Vpt::node_aware(128, 128), Error);  // r must be < K
  EXPECT_THROW(Vpt::node_aware(128, 1), Error);
}

TEST(Vpt, EqualityComparesDimensionSizes) {
  EXPECT_EQ(Vpt({4, 4}), Vpt({4, 4}));
  EXPECT_FALSE(Vpt({4, 4}) == Vpt({2, 8}));
}

}  // namespace
}  // namespace stfw::core
