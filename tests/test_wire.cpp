#include "core/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace stfw::core {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Wire, EmptyMessageRoundTrip) {
  PayloadArena arena;
  StageMessage m{0, 1, {}};
  const auto wire = serialize(m, arena);
  EXPECT_EQ(wire.size(), wire_size_bytes(0, 0));
  PayloadArena arena2;
  const auto subs = deserialize(wire, arena2);
  EXPECT_TRUE(subs.empty());
}

TEST(Wire, RoundTripPreservesHeadersAndPayloads) {
  PayloadArena arena;
  StageMessage m{3, 7, {}};
  const auto p1 = bytes_of({1, 2, 3, 4});
  const auto p2 = bytes_of({});
  const auto p3 = bytes_of({0xde, 0xad, 0xbe, 0xef, 0x42});
  m.subs.push_back(Submessage{2, 9, arena.add(p1), 4});
  m.subs.push_back(Submessage{3, 5, arena.add(p2), 0});
  m.subs.push_back(Submessage{11, 9, arena.add(p3), 5});

  const auto wire = serialize(m, arena);
  EXPECT_EQ(wire.size(), wire_size_bytes(3, 9));

  PayloadArena arena2;
  const auto subs = deserialize(wire, arena2);
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0].source, 2);
  EXPECT_EQ(subs[0].dest, 9);
  EXPECT_EQ(subs[1].source, 3);
  EXPECT_EQ(subs[1].dest, 5);
  EXPECT_EQ(subs[2].source, 11);
  EXPECT_EQ(subs[2].dest, 9);
  const auto v1 = arena2.view(subs[0]);
  const auto v3 = arena2.view(subs[2]);
  EXPECT_TRUE(std::equal(v1.begin(), v1.end(), p1.begin(), p1.end()));
  EXPECT_TRUE(std::equal(v3.begin(), v3.end(), p3.begin(), p3.end()));
}

TEST(Wire, RandomizedRoundTrip) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int> count_dist(0, 40);
  std::uniform_int_distribution<int> len_dist(0, 64);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int trial = 0; trial < 50; ++trial) {
    PayloadArena arena;
    StageMessage m{1, 2, {}};
    const int count = count_dist(rng);
    std::vector<std::vector<std::byte>> payloads;
    for (int i = 0; i < count; ++i) {
      std::vector<std::byte> p(static_cast<std::size_t>(len_dist(rng)));
      for (auto& b : p) b = static_cast<std::byte>(byte_dist(rng));
      m.subs.push_back(
          Submessage{i, i + 1, arena.add(p), static_cast<std::uint32_t>(p.size())});
      payloads.push_back(std::move(p));
    }
    PayloadArena arena2;
    const auto subs = deserialize(serialize(m, arena), arena2);
    ASSERT_EQ(subs.size(), payloads.size());
    for (std::size_t i = 0; i < subs.size(); ++i) {
      const auto view = arena2.view(subs[i]);
      EXPECT_TRUE(std::equal(view.begin(), view.end(), payloads[i].begin(), payloads[i].end()));
    }
  }
}

TEST(Wire, RejectsTruncatedHeader) {
  const auto wire = bytes_of({1, 0, 0});  // 3 bytes < u32 count
  PayloadArena arena;
  EXPECT_THROW(deserialize(wire, arena), Error);
}

TEST(Wire, RejectsTruncatedPayload) {
  PayloadArena arena;
  StageMessage m{0, 1, {}};
  const auto p = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  m.subs.push_back(Submessage{0, 1, arena.add(p), 8});
  auto wire = serialize(m, arena);
  // erase, not resize(size() - 3): gcc 12 cannot see that size() >= 3 here and
  // flags the shrinking resize with a bogus -Wstringop-overflow under asan.
  wire.erase(wire.end() - 3, wire.end());
  PayloadArena arena2;
  EXPECT_THROW(deserialize(wire, arena2), Error);
}

TEST(Wire, RejectsTrailingGarbage) {
  PayloadArena arena;
  StageMessage m{0, 1, {}};
  auto wire = serialize(m, arena);
  wire.push_back(std::byte{0});
  PayloadArena arena2;
  EXPECT_THROW(deserialize(wire, arena2), Error);
}

TEST(Wire, TrackedRoundTripPreservesIds) {
  PayloadArena arena;
  StageMessage m{3, 7, {}};
  const auto p1 = bytes_of({1, 2, 3, 4});
  const auto p2 = bytes_of({});
  m.subs.push_back(Submessage{2, 9, arena.add(p1), 4, 11});
  m.subs.push_back(Submessage{3, 5, arena.add(p2), 0, 0xffffffffu});
  const auto wire = serialize_tracked(m, arena);
  // The tracked layout costs exactly 4 extra bytes per submessage.
  EXPECT_EQ(wire.size(), wire_size_bytes(2, 4) + 2 * 4);
  PayloadArena arena2;
  const auto subs = deserialize_tracked(wire, arena2);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].source, 2);
  EXPECT_EQ(subs[0].dest, 9);
  EXPECT_EQ(subs[0].id, 11u);
  EXPECT_EQ(subs[1].id, 0xffffffffu);
  const auto v1 = arena2.view(subs[0]);
  EXPECT_TRUE(std::equal(v1.begin(), v1.end(), p1.begin(), p1.end()));
}

TEST(Wire, TrackedRejectsTruncation) {
  PayloadArena arena;
  StageMessage m{0, 1, {}};
  const auto p = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  m.subs.push_back(Submessage{0, 1, arena.add(p), 8, 3});
  auto wire = serialize_tracked(m, arena);
  wire.erase(wire.end() - 3, wire.end());
  PayloadArena arena2;
  EXPECT_THROW(deserialize_tracked(wire, arena2), Error);
}

TEST(Frame, RoundTripPreservesHeaderAndBody) {
  const auto body = bytes_of({10, 20, 30, 40, 50});
  FrameHeader h;
  h.kind = FrameKind::kData;
  h.stage = 3;
  h.epoch = 17;
  h.seq = 12345;
  h.sender = 42;
  const auto wire = encode_frame(h, body);
  EXPECT_EQ(wire.size(), kFrameOverheadBytes + body.size());

  const auto dec = decode_frame(wire);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->header.kind, FrameKind::kData);
  EXPECT_EQ(dec->header.stage, 3);
  EXPECT_EQ(dec->header.epoch, 17u);
  EXPECT_EQ(dec->header.seq, 12345u);
  EXPECT_EQ(dec->header.sender, 42);
  EXPECT_EQ(dec->header.body_len, 5u);
  EXPECT_TRUE(std::equal(dec->body.begin(), dec->body.end(), body.begin(), body.end()));
}

TEST(Frame, EmptyBodyRoundTrip) {
  FrameHeader h;
  h.kind = FrameKind::kAck;
  h.seq = 9;
  h.sender = 1;
  const auto wire = encode_frame(h, {});
  EXPECT_EQ(wire.size(), kFrameOverheadBytes);
  const auto dec = decode_frame(wire);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->header.kind, FrameKind::kAck);
  EXPECT_TRUE(dec->body.empty());
}

TEST(Frame, DetectsTruncationAnywhere) {
  const auto body = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  FrameHeader h;
  h.sender = 0;
  const auto wire = encode_frame(h, body);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::span<const std::byte> prefix(wire.data(), len);
    EXPECT_FALSE(decode_frame(prefix).has_value()) << "accepted a " << len << "-byte prefix";
  }
}

TEST(Frame, DetectsSingleBitCorruptionAnywhere) {
  const auto body = bytes_of({0xaa, 0xbb, 0xcc, 0xdd});
  FrameHeader h;
  h.kind = FrameKind::kDirect;
  h.epoch = 3;
  h.seq = 7;
  h.sender = 5;
  const auto wire = encode_frame(h, body);
  ASSERT_TRUE(decode_frame(wire).has_value());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = wire;
      bad[i] ^= static_cast<std::byte>(1 << bit);
      EXPECT_FALSE(decode_frame(bad).has_value())
          << "accepted a flipped bit " << bit << " at byte " << i;
    }
  }
}

TEST(Frame, RejectsWrongMagicAndBadKind) {
  FrameHeader h;
  h.sender = 0;
  auto wire = encode_frame(h, {});
  auto bad_magic = wire;
  bad_magic[0] = std::byte{0};
  EXPECT_FALSE(decode_frame(bad_magic).has_value());
  // Kind lives at offset 4; an out-of-range value must be rejected even if
  // someone recomputed the checksum over it.
  FrameHeader weird = h;
  weird.kind = static_cast<FrameKind>(99);
  EXPECT_FALSE(decode_frame(encode_frame(weird, {})).has_value());
}

TEST(Frame, ChecksumCoversHeaderNotJustBody) {
  // Two frames with identical bodies but different seq must have different
  // checksums — otherwise a reordered wire buffer could impersonate another
  // frame.
  const auto body = bytes_of({1, 2, 3});
  FrameHeader a;
  a.seq = 1;
  a.sender = 0;
  FrameHeader b = a;
  b.seq = 2;
  const auto wa = encode_frame(a, body);
  const auto wb = encode_frame(b, body);
  const std::span<const std::byte> ca(wa.data() + 28, 8);
  const std::span<const std::byte> cb(wb.data() + 28, 8);
  EXPECT_FALSE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()));
}

TEST(Frame, MemberEpochRoundTripsAndIsChecksummed) {
  const auto body = bytes_of({9, 8, 7});
  FrameHeader h;
  h.kind = FrameKind::kRelay;
  h.stage = 1;
  h.epoch = 4;
  h.member_epoch = 6;
  h.seq = 11;
  h.sender = 2;
  const auto wire = encode_frame(h, body);
  const auto dec = decode_frame(wire);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->header.kind, FrameKind::kRelay);
  EXPECT_EQ(dec->header.member_epoch, 6u);

  // Two frames differing only in membership claim must differ in checksum:
  // a stale frame cannot be patched into a fresh one without re-signing.
  FrameHeader h2 = h;
  h2.member_epoch = 7;
  const auto wire2 = encode_frame(h2, body);
  const std::span<const std::byte> ca(wire.data() + 28, 8);
  const std::span<const std::byte> cb(wire2.data() + 28, 8);
  EXPECT_FALSE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()));
}

TEST(Frame, RestampMemberEpochKeepsFrameDecodable) {
  const auto body = bytes_of({1, 2, 3, 4});
  FrameHeader h;
  h.kind = FrameKind::kData;
  h.stage = 2;
  h.epoch = 5;
  h.member_epoch = 1;
  h.seq = 33;
  h.sender = 6;
  auto wire = encode_frame(h, body);
  restamp_member_epoch(wire, 9);
  const auto dec = decode_frame(wire);
  ASSERT_TRUE(dec.has_value()) << "restamp must recompute the checksum";
  EXPECT_EQ(dec->header.member_epoch, 9u);
  EXPECT_EQ(dec->header.kind, FrameKind::kData);
  EXPECT_EQ(dec->header.stage, 2);
  EXPECT_EQ(dec->header.epoch, 5u);
  EXPECT_EQ(dec->header.seq, 33u);
  EXPECT_EQ(dec->header.sender, 6);
  EXPECT_TRUE(std::equal(dec->body.begin(), dec->body.end(), body.begin(), body.end()));
  EXPECT_EQ(wire, encode_frame([&] {
              FrameHeader fresh = h;
              fresh.member_epoch = 9;
              return fresh;
            }(), body))
      << "restamping must be byte-identical to encoding with the new epoch";
}

TEST(FailureNoticeCodec, RoundTripsDeadList) {
  const std::vector<std::int32_t> dead{3, 7, 11};
  const auto body = encode_failure_notice(42, dead);
  const auto notice = decode_failure_notice(body);
  ASSERT_TRUE(notice.has_value());
  EXPECT_EQ(notice->membership_epoch, 42u);
  EXPECT_EQ(notice->dead, dead);

  const auto empty = decode_failure_notice(encode_failure_notice(1, {}));
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->membership_epoch, 1u);
  EXPECT_TRUE(empty->dead.empty());
}

TEST(FailureNoticeCodec, RejectsTruncationAndTrailingGarbage) {
  const std::vector<std::int32_t> dead{0, 2};
  const auto body = encode_failure_notice(5, dead);
  for (std::size_t len = 0; len < body.size(); ++len) {
    const std::span<const std::byte> prefix(body.data(), len);
    EXPECT_FALSE(decode_failure_notice(prefix).has_value())
        << "accepted a " << len << "-byte prefix";
  }
  auto padded = body;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(decode_failure_notice(padded).has_value());
}

TEST(FailureNoticeCodec, RejectsOverstatedDeadCount) {
  // A notice claiming more dead ranks than the bytes it carries must be
  // dropped, not read past the end.
  auto body = encode_failure_notice(3, std::vector<std::int32_t>{1});
  body[4] = std::byte{0xff};  // dead_count lives at offset 4
  body[5] = std::byte{0xff};
  EXPECT_FALSE(decode_failure_notice(body).has_value());
}

TEST(Frame, FnvDigestIsStable) {
  const auto data = bytes_of({'a', 'b', 'c'});
  // Reference value of FNV-1a 64 for "abc".
  EXPECT_EQ(fnv1a(data), 0xe71fa2190541574bull);
  EXPECT_EQ(fnv1a({}), 14695981039346656037ull);
}

TEST(PayloadArenaTest, ViewsRemainValidAcrossAdds) {
  PayloadArena arena;
  const auto p1 = bytes_of({1, 2, 3});
  const Submessage s1{0, 1, arena.add(p1), 3};
  for (int i = 0; i < 1000; ++i) arena.add(p1);
  const auto view = arena.view(s1);
  EXPECT_TRUE(std::equal(view.begin(), view.end(), p1.begin(), p1.end()));
  EXPECT_EQ(arena.size_bytes(), 3u * 1001u);
}

}  // namespace
}  // namespace stfw::core
