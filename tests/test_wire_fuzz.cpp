// Property/fuzz tests of the wire formats (ISSUE 4 satellite). Run under the
// asan-ubsan preset these double as memory-safety proofs: every single-byte
// mutation of a checksummed frame must be rejected, and no mutation of any
// wire image — frame or plain — may read out of bounds or crash.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "core/error.hpp"
#include "core/message.hpp"
#include "core/wire.hpp"

namespace stfw::core {
namespace {

std::vector<std::byte> random_body(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::vector<std::byte> body(len_dist(rng));
  for (std::byte& b : body) b = static_cast<std::byte>(byte_dist(rng));
  return body;
}

FrameHeader random_header(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> kind_dist(1, 4);
  std::uniform_int_distribution<std::uint32_t> u32_dist;
  FrameHeader h;
  h.kind = static_cast<FrameKind>(kind_dist(rng));
  h.stage = static_cast<std::uint16_t>(u32_dist(rng) & 0xffff);
  h.epoch = u32_dist(rng);
  h.seq = u32_dist(rng);
  h.sender = static_cast<std::int32_t>(u32_dist(rng) & 0x7fffffff);
  return h;
}

TEST(WireFuzz, RandomFramesRoundTripLosslessly) {
  std::mt19937_64 rng(20190717);
  for (int trial = 0; trial < 200; ++trial) {
    const FrameHeader h = random_header(rng);
    const auto body = random_body(rng, 256);
    const auto wire = encode_frame(h, body);
    ASSERT_EQ(wire.size(), kFrameOverheadBytes + body.size());

    const auto decoded = decode_frame(wire);
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    EXPECT_EQ(decoded->header.kind, h.kind);
    EXPECT_EQ(decoded->header.stage, h.stage);
    EXPECT_EQ(decoded->header.epoch, h.epoch);
    EXPECT_EQ(decoded->header.seq, h.seq);
    EXPECT_EQ(decoded->header.sender, h.sender);
    EXPECT_EQ(decoded->header.body_len, body.size());
    EXPECT_TRUE(std::equal(decoded->body.begin(), decoded->body.end(), body.begin(), body.end()));
  }
}

TEST(WireFuzz, EverySingleByteMutationIsRejected) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const FrameHeader h = random_header(rng);
    const auto body = random_body(rng, 48);
    const auto wire = encode_frame(h, body);
    for (std::size_t pos = 0; pos < wire.size(); ++pos) {
      for (int delta = 1; delta < 256; ++delta) {
        auto mutated = wire;
        mutated[pos] = static_cast<std::byte>(static_cast<int>(mutated[pos]) ^ delta);
        // The checksum covers every header field and the whole body, so any
        // single-byte change — including of the checksum itself — must read
        // as corruption.
        EXPECT_FALSE(decode_frame(mutated).has_value())
            << "mutation at byte " << pos << " xor " << delta << " was accepted";
      }
    }
  }
}

TEST(WireFuzz, EveryTruncationPrefixIsRejected) {
  std::mt19937_64 rng(11);
  const FrameHeader h = random_header(rng);
  const auto body = random_body(rng, 64);
  const auto wire = encode_frame(h, body);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::vector<std::byte> prefix(wire.begin(),
                                        wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decode_frame(prefix).has_value()) << "prefix of " << len << " bytes accepted";
  }
  // Trailing garbage beyond body_len is equally a framing violation.
  auto padded = wire;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(decode_frame(padded).has_value());
}

TEST(WireFuzz, RandomGarbageNeverCrashesFrameDecode) {
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int trial = 0; trial < 500; ++trial) {
    auto garbage = random_body(rng, 128);
    // Half the trials start with the real magic so decode exercises the
    // deeper header/checksum checks instead of bailing on byte 0.
    if (trial % 2 == 0 && garbage.size() >= 4) {
      garbage[0] = static_cast<std::byte>(kFrameMagic & 0xff);
      garbage[1] = static_cast<std::byte>((kFrameMagic >> 8) & 0xff);
      garbage[2] = static_cast<std::byte>((kFrameMagic >> 16) & 0xff);
      garbage[3] = static_cast<std::byte>((kFrameMagic >> 24) & 0xff);
    }
    (void)decode_frame(garbage);  // must not crash or read OOB; result is moot
  }
}

/// One random plain-format stage message (the paper's unchecksummed wire
/// image) with its serialized bytes.
std::vector<std::byte> random_stage_wire(std::mt19937_64& rng, bool tracked) {
  std::uniform_int_distribution<int> count_dist(0, 12);
  std::uniform_int_distribution<int> rank_dist(0, 1 << 20);
  PayloadArena arena;
  StageMessage m{rank_dist(rng), rank_dist(rng), {}};
  const int count = count_dist(rng);
  for (int i = 0; i < count; ++i) {
    const auto payload = random_body(rng, 40);
    Submessage s;
    s.source = rank_dist(rng);
    s.dest = rank_dist(rng);
    s.offset = arena.add(payload);
    s.size_bytes = static_cast<std::uint32_t>(payload.size());
    s.id = static_cast<std::uint32_t>(i);
    m.subs.push_back(s);
  }
  return tracked ? serialize_tracked(m, arena) : serialize(m, arena);
}

/// The plain format has no checksum: a mutation may legitimately decode (it
/// changed a rank id or a payload byte), but it must never read out of
/// bounds, crash, or produce submessages pointing outside the arena.
TEST(WireFuzz, MutatedStageMessagesDecodeSafelyOrThrow) {
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<int> byte_dist(1, 255);
  for (const bool tracked : {false, true}) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto wire = random_stage_wire(rng, tracked);
      for (std::size_t pos = 0; pos < wire.size(); ++pos) {
        auto mutated = wire;
        mutated[pos] =
            static_cast<std::byte>(static_cast<int>(mutated[pos]) ^ byte_dist(rng));
        PayloadArena arena;
        try {
          const auto subs =
              tracked ? deserialize_tracked(mutated, arena) : deserialize(mutated, arena);
          for (const Submessage& s : subs) {
            ASSERT_LE(s.offset + s.size_bytes, arena.size_bytes())
                << "submessage points outside the arena";
          }
        } catch (const Error&) {
          // Malformed counts/lengths are rejected loudly — equally fine.
        }
      }
    }
  }
}

TEST(WireFuzz, TruncatedStageMessagesThrowOrDecodeSafely) {
  std::mt19937_64 rng(19);
  for (const bool tracked : {false, true}) {
    const auto wire = random_stage_wire(rng, tracked);
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const std::vector<std::byte> prefix(wire.begin(),
                                          wire.begin() + static_cast<std::ptrdiff_t>(len));
      PayloadArena arena;
      try {
        const auto subs =
            tracked ? deserialize_tracked(prefix, arena) : deserialize(prefix, arena);
        for (const Submessage& s : subs)
          ASSERT_LE(s.offset + s.size_bytes, arena.size_bytes());
      } catch (const Error&) {
      }
    }
  }
}

}  // namespace
}  // namespace stfw::core
