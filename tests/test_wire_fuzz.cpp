// Property/fuzz tests of the wire formats (ISSUE 4 satellite). Run under the
// asan-ubsan preset these double as memory-safety proofs: every single-byte
// mutation of a checksummed frame must be rejected, and no mutation of any
// wire image — frame or plain — may read out of bounds or crash.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "core/buffer_pool.hpp"
#include "core/error.hpp"
#include "core/exchange_plan.hpp"
#include "core/message.hpp"
#include "core/vpt.hpp"
#include "core/wire.hpp"
#include "runtime/exchange_plan.hpp"

namespace stfw::core {
namespace {

std::vector<std::byte> random_body(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::vector<std::byte> body(len_dist(rng));
  for (std::byte& b : body) b = static_cast<std::byte>(byte_dist(rng));
  return body;
}

FrameHeader random_header(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> kind_dist(1, 6);  // kData..kFailureNotice
  std::uniform_int_distribution<std::uint32_t> u32_dist;
  FrameHeader h;
  h.kind = static_cast<FrameKind>(kind_dist(rng));
  h.stage = static_cast<std::uint16_t>(u32_dist(rng) & 0xffff);
  h.epoch = u32_dist(rng);
  h.member_epoch = u32_dist(rng);
  h.seq = u32_dist(rng);
  h.sender = static_cast<std::int32_t>(u32_dist(rng) & 0x7fffffff);
  return h;
}

TEST(WireFuzz, RandomFramesRoundTripLosslessly) {
  std::mt19937_64 rng(20190717);
  for (int trial = 0; trial < 200; ++trial) {
    const FrameHeader h = random_header(rng);
    const auto body = random_body(rng, 256);
    const auto wire = encode_frame(h, body);
    ASSERT_EQ(wire.size(), kFrameOverheadBytes + body.size());

    const auto decoded = decode_frame(wire);
    ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
    EXPECT_EQ(decoded->header.kind, h.kind);
    EXPECT_EQ(decoded->header.stage, h.stage);
    EXPECT_EQ(decoded->header.epoch, h.epoch);
    EXPECT_EQ(decoded->header.member_epoch, h.member_epoch);
    EXPECT_EQ(decoded->header.seq, h.seq);
    EXPECT_EQ(decoded->header.sender, h.sender);
    EXPECT_EQ(decoded->header.body_len, body.size());
    EXPECT_TRUE(std::equal(decoded->body.begin(), decoded->body.end(), body.begin(), body.end()));
  }
}

TEST(WireFuzz, EverySingleByteMutationIsRejected) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const FrameHeader h = random_header(rng);
    const auto body = random_body(rng, 48);
    const auto wire = encode_frame(h, body);
    for (std::size_t pos = 0; pos < wire.size(); ++pos) {
      for (int delta = 1; delta < 256; ++delta) {
        auto mutated = wire;
        mutated[pos] = static_cast<std::byte>(static_cast<int>(mutated[pos]) ^ delta);
        // The checksum covers every header field and the whole body, so any
        // single-byte change — including of the checksum itself — must read
        // as corruption.
        EXPECT_FALSE(decode_frame(mutated).has_value())
            << "mutation at byte " << pos << " xor " << delta << " was accepted";
      }
    }
  }
}

TEST(WireFuzz, EveryTruncationPrefixIsRejected) {
  std::mt19937_64 rng(11);
  const FrameHeader h = random_header(rng);
  const auto body = random_body(rng, 64);
  const auto wire = encode_frame(h, body);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::vector<std::byte> prefix(wire.begin(),
                                        wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decode_frame(prefix).has_value()) << "prefix of " << len << " bytes accepted";
  }
  // Trailing garbage beyond body_len is equally a framing violation.
  auto padded = wire;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(decode_frame(padded).has_value());
}

TEST(WireFuzz, RandomGarbageNeverCrashesFrameDecode) {
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int trial = 0; trial < 500; ++trial) {
    auto garbage = random_body(rng, 128);
    // Half the trials start with the real magic so decode exercises the
    // deeper header/checksum checks instead of bailing on byte 0.
    if (trial % 2 == 0 && garbage.size() >= 4) {
      garbage[0] = static_cast<std::byte>(kFrameMagic & 0xff);
      garbage[1] = static_cast<std::byte>((kFrameMagic >> 8) & 0xff);
      garbage[2] = static_cast<std::byte>((kFrameMagic >> 16) & 0xff);
      garbage[3] = static_cast<std::byte>((kFrameMagic >> 24) & 0xff);
    }
    (void)decode_frame(garbage);  // must not crash or read OOB; result is moot
  }
}

/// One random plain-format stage message (the paper's unchecksummed wire
/// image) with its serialized bytes.
std::vector<std::byte> random_stage_wire(std::mt19937_64& rng, bool tracked) {
  std::uniform_int_distribution<int> count_dist(0, 12);
  std::uniform_int_distribution<int> rank_dist(0, 1 << 20);
  PayloadArena arena;
  StageMessage m{rank_dist(rng), rank_dist(rng), {}};
  const int count = count_dist(rng);
  for (int i = 0; i < count; ++i) {
    const auto payload = random_body(rng, 40);
    Submessage s;
    s.source = rank_dist(rng);
    s.dest = rank_dist(rng);
    s.offset = arena.add(payload);
    s.size_bytes = static_cast<std::uint32_t>(payload.size());
    s.id = static_cast<std::uint32_t>(i);
    m.subs.push_back(s);
  }
  return tracked ? serialize_tracked(m, arena) : serialize(m, arena);
}

/// The plain format has no checksum: a mutation may legitimately decode (it
/// changed a rank id or a payload byte), but it must never read out of
/// bounds, crash, or produce submessages pointing outside the arena.
TEST(WireFuzz, MutatedStageMessagesDecodeSafelyOrThrow) {
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<int> byte_dist(1, 255);
  for (const bool tracked : {false, true}) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto wire = random_stage_wire(rng, tracked);
      for (std::size_t pos = 0; pos < wire.size(); ++pos) {
        auto mutated = wire;
        mutated[pos] =
            static_cast<std::byte>(static_cast<int>(mutated[pos]) ^ byte_dist(rng));
        PayloadArena arena;
        try {
          const auto subs =
              tracked ? deserialize_tracked(mutated, arena) : deserialize(mutated, arena);
          for (const Submessage& s : subs) {
            ASSERT_LE(s.offset + s.size_bytes, arena.size_bytes())
                << "submessage points outside the arena";
          }
        } catch (const Error&) {
          // Malformed counts/lengths are rejected loudly — equally fine.
        }
      }
    }
  }
}

/// A random failure-notice body (the kFailureNotice payload). Dead ranks are
/// arbitrary ints — the codec promises bounds safety, not semantic checks.
std::vector<std::byte> random_notice(std::mt19937_64& rng) {
  std::uniform_int_distribution<std::uint32_t> u32_dist;
  std::uniform_int_distribution<int> count_dist(0, 16);
  std::uniform_int_distribution<int> rank_dist(0, 1 << 24);
  std::vector<std::int32_t> dead(static_cast<std::size_t>(count_dist(rng)));
  for (std::int32_t& r : dead) r = rank_dist(rng);
  return encode_failure_notice(u32_dist(rng), dead);
}

TEST(WireFuzz, FailureNoticesRoundTripLosslessly) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<std::uint32_t> u32_dist;
  std::uniform_int_distribution<int> count_dist(0, 16);
  std::uniform_int_distribution<int> rank_dist(0, 1 << 24);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t epoch = u32_dist(rng);
    std::vector<std::int32_t> dead(static_cast<std::size_t>(count_dist(rng)));
    for (std::int32_t& r : dead) r = rank_dist(rng);
    const auto notice = decode_failure_notice(encode_failure_notice(epoch, dead));
    ASSERT_TRUE(notice.has_value()) << "trial " << trial;
    EXPECT_EQ(notice->membership_epoch, epoch);
    EXPECT_EQ(notice->dead, dead);
  }
}

/// The notice body rides inside a checksummed frame, but a survivor must not
/// depend on that: a corrupt notice reaching the codec is dropped, never a
/// crash or an out-of-bounds read (ISSUE 7 satellite — asan/ubsan presets
/// turn any violation into a hard failure).
TEST(WireFuzz, MutatedFailureNoticesNeverCrash) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const auto body = random_notice(rng);
    for (std::size_t pos = 0; pos < body.size(); ++pos) {
      for (int delta = 1; delta < 256; delta += 17) {
        auto mutated = body;
        mutated[pos] = static_cast<std::byte>(static_cast<int>(mutated[pos]) ^ delta);
        const auto notice = decode_failure_notice(mutated);
        // A mutation inside the dead-rank list legitimately decodes (to a
        // different list); a mutated count must be rejected, not chased.
        if (notice.has_value()) {
          EXPECT_LE(notice->dead.size() * 4 + 8, mutated.size());
        }
      }
    }
  }
}

TEST(WireFuzz, TruncatedFailureNoticesAreRejected) {
  std::mt19937_64 rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    const auto body = random_notice(rng);
    for (std::size_t len = 0; len < body.size(); ++len) {
      const std::vector<std::byte> prefix(body.begin(),
                                          body.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_FALSE(decode_failure_notice(prefix).has_value())
          << "accepted a " << len << "-byte prefix in trial " << trial;
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashesNoticeDecode) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const auto garbage = random_body(rng, 96);
    const auto notice = decode_failure_notice(garbage);
    if (notice.has_value()) {
      EXPECT_LE(notice->dead.size() * 4 + 8, garbage.size());
    }
  }
}

/// Stale-epoch replay: an attacker (or a delayed network) re-delivering an
/// old frame can never make it claim a newer membership than it was signed
/// with — flipping the member_epoch bytes breaks the checksum, and the only
/// legitimate path, restamp_member_epoch, re-signs the frame.
TEST(WireFuzz, StaleEpochReplayRequiresRestamp) {
  std::mt19937_64 rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    FrameHeader h = random_header(rng);
    h.member_epoch = 3;
    const auto body = random_body(rng, 64);
    auto wire = encode_frame(h, body);

    // Patching the member_epoch field (offset 12) without re-signing must
    // read as corruption.
    auto patched = wire;
    patched[12] = static_cast<std::byte>(9);
    EXPECT_FALSE(decode_frame(patched).has_value());

    // Restamping is the sanctioned path: decodable, new epoch, same body.
    std::uniform_int_distribution<std::uint32_t> u32_dist;
    const std::uint32_t fresh = u32_dist(rng);
    restamp_member_epoch(wire, fresh);
    const auto dec = decode_frame(wire);
    ASSERT_TRUE(dec.has_value()) << "trial " << trial;
    EXPECT_EQ(dec->header.member_epoch, fresh);
    EXPECT_EQ(dec->header.kind, h.kind);
    EXPECT_EQ(dec->header.seq, h.seq);
    EXPECT_TRUE(std::equal(dec->body.begin(), dec->body.end(), body.begin(), body.end()));
  }
}

// ---------------------------------------------------------------------------
// Plan-layout fuzzing (zero-copy PR satellite). The gather path trusts a
// frozen layout's slot tables blindly — memcpys straight through them with no
// per-replay checks — so validate_plan_layout (run once at ExchangePlan
// construction) is the only thing standing between a corrupted layout and an
// out-of-bounds read. Every mutation class it promises to reject is pinned
// here, plus a random sweep proving the validator itself never crashes.

/// A small but fully featured recorded layout: one out-frame with two seed
/// slots, one inbound frame, one forwarded delivery out of that frame.
ExchangePlanLayout recorded_layout() {
  const Vpt vpt = Vpt::direct(4);
  const std::vector<std::pair<Rank, std::uint32_t>> pattern = {{2, 8}, {3, 4}};
  PlanRecorder rec(vpt, /*me=*/1, pattern);

  std::vector<Submessage> outs(2);
  outs[0].source = 1;
  outs[0].dest = 2;
  outs[0].size_bytes = 8;
  outs[1].source = 1;
  outs[1].dest = 3;
  outs[1].size_bytes = 4;
  outs[1].id = 1;
  std::vector<PayloadSrc> srcs(2);
  srcs[0].index = 0;
  srcs[0].bytes = 8;
  srcs[1].index = 1;
  srcs[1].bytes = 4;
  rec.on_stage_send(0, 2, outs, srcs);

  Submessage in{};
  in.source = 0;
  in.dest = 1;
  in.size_bytes = 6;
  const PlanInFrame& inf = rec.on_stage_recv(0, 0, {&in, 1});
  rec.on_stage_complete(0, 0, 0);

  Submessage del{};
  del.source = 0;
  del.dest = 1;
  del.size_bytes = 6;
  PayloadSrc del_src;
  del_src.kind = PayloadSrc::Kind::kRecv;
  del_src.stage = 0;
  del_src.frame = 0;
  del_src.offset = static_cast<std::uint32_t>(inf.subs[0].offset);
  del_src.bytes = 6;
  return rec.finish({&del, 1}, {&del_src, 1});
}

TEST(PlanLayoutFuzz, BaselineRecordedLayoutValidates) {
  const ExchangePlanLayout layout = recorded_layout();
  EXPECT_NO_THROW(validate_plan_layout(layout));
  // The runtime executor runs the same audit at construction.
  EXPECT_NO_THROW(stfw::runtime::ExchangePlan{layout});
}

TEST(PlanLayoutFuzz, EveryTargetedSlotTableMutationIsRejected) {
  using Mutator = void (*)(ExchangePlanLayout&);
  const std::pair<const char*, Mutator> mutations[] = {
      {"stage count mismatch", [](ExchangePlanLayout& l) { l.in_frames.clear(); }},
      {"slot table size mismatch",
       [](ExchangePlanLayout& l) { l.out_frames[0][0].slot_offsets.pop_back(); }},
      {"slot past frame image",
       [](ExchangePlanLayout& l) {
         l.out_frames[0][0].slot_offsets[1] =
             static_cast<std::uint32_t>(l.out_frames[0][0].image.size());
       }},
      {"overlapping slots",
       [](ExchangePlanLayout& l) {
         l.out_frames[0][0].slot_offsets[1] = l.out_frames[0][0].slot_offsets[0];
       }},
      {"seed index out of range",
       [](ExchangePlanLayout& l) { l.out_frames[0][0].slots[0].index = 99; }},
      {"seed size disagrees with pattern",
       [](ExchangePlanLayout& l) { l.signature.sequence[0].second = 7; }},
      {"recv stage out of range",
       [](ExchangePlanLayout& l) { l.deliveries[0].src.stage = 7; }},
      {"recv frame out of range",
       [](ExchangePlanLayout& l) { l.deliveries[0].src.frame = 9; }},
      {"recv slot past inbound frame",
       [](ExchangePlanLayout& l) {
         l.deliveries[0].src.offset =
             static_cast<std::uint32_t>(l.in_frames[0][0].wire_size);
       }},
      {"inbound submessage past frame",
       [](ExchangePlanLayout& l) { l.in_frames[0][0].subs[0].size_bytes = 1000; }},
  };
  for (const auto& [what, mutate] : mutations) {
    ExchangePlanLayout mutated = recorded_layout();
    mutate(mutated);
    EXPECT_THROW(validate_plan_layout(mutated), ValidationError) << what;
    EXPECT_THROW(stfw::runtime::ExchangePlan{mutated}, ValidationError) << what;
  }
}

/// Random numeric corruption: the validator must either accept (a mutation
/// can be semantically harmless) or throw ValidationError — never crash or
/// read out of bounds (the asan-ubsan preset turns the latter into failures).
TEST(PlanLayoutFuzz, RandomFieldCorruptionValidatesOrThrowsButNeverCrashes) {
  std::mt19937_64 rng(41);
  std::uniform_int_distribution<std::uint32_t> val_dist;
  const ExchangePlanLayout base = recorded_layout();
  for (int trial = 0; trial < 500; ++trial) {
    ExchangePlanLayout l = base;
    for (int hit = 1 + static_cast<int>(val_dist(rng) % 3); hit > 0; --hit) {
      const std::uint32_t v = val_dist(rng);
      switch (val_dist(rng) % 8) {
        case 0: l.out_frames[0][0].slot_offsets[v % 2] = v; break;
        case 1: l.out_frames[0][0].slots[v % 2].bytes = v % 64; break;
        case 2: l.out_frames[0][0].slots[v % 2].index = v % 8; break;
        case 3: l.deliveries[0].src.offset = v % 64; break;
        case 4: l.deliveries[0].src.bytes = v % 64; break;
        case 5: l.deliveries[0].src.frame = static_cast<std::uint16_t>(v % 4); break;
        case 6: l.deliveries[0].src.stage = static_cast<std::uint8_t>(v % 4); break;
        case 7: l.in_frames[0][0].subs[0].size_bytes = v % 128; break;
      }
    }
    try {
      validate_plan_layout(l);
    } catch (const ValidationError&) {
      // Rejected loudly — the contract.
    }
  }
}

#if STFW_SANITIZE_ENABLED
// Pool hygiene under sanitized builds: a recycled buffer must come back
// poisoned (0xA5), so a stale InboundView into a released buffer can never
// silently read the previous exchange's payload (buffer_pool.cpp pins the
// poison constant here).
TEST(BufferPoolFuzz, RecycledBuffersComeBackPoisoned) {
  BufferPool pool;
  auto buf = pool.acquire(96);
  std::fill(buf.begin(), buf.end(), std::byte{0x11});
  pool.release(std::move(buf));
  const auto again = pool.acquire(96);
  ASSERT_EQ(pool.stats().hits, 1);
  for (std::size_t i = 0; i < again.size(); ++i)
    ASSERT_EQ(static_cast<int>(again[i]), 0xA5) << "byte " << i << " not poisoned";
}
#endif

TEST(WireFuzz, TruncatedStageMessagesThrowOrDecodeSafely) {
  std::mt19937_64 rng(19);
  for (const bool tracked : {false, true}) {
    const auto wire = random_stage_wire(rng, tracked);
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const std::vector<std::byte> prefix(wire.begin(),
                                          wire.begin() + static_cast<std::ptrdiff_t>(len));
      PayloadArena arena;
      try {
        const auto subs =
            tracked ? deserialize_tracked(prefix, arena) : deserialize(prefix, arena);
        for (const Submessage& s : subs)
          ASSERT_LE(s.offset + s.size_bytes, arena.size_bytes());
      } catch (const Error&) {
      }
    }
  }
}

}  // namespace
}  // namespace stfw::core
