// Zero-copy planned replay differential battery (zero-copy PR satellite).
//
// The pooled scatter/gather replay (gather_planned_frame + exchange_views,
// stfw_communicator.cpp) must be byte-identical to both the historical
// copying replay and the unplanned Algorithm 1 — on every wire frame and
// every delivery, across pattern scale, payload-size extremes, aliasing and
// repeated replays over recycled pool buffers. This suite pins that:
//
//  * three-way differential (views vs copying replay vs unplanned) at
//    K in {4, 16, 64, 256} over a skewed pseudo-random pattern;
//  * mixed payload sizes including zero-length sends and a max-slot payload
//    dwarfing the rest of its frame;
//  * aliasing: the same source bytes sent to several destinations, and
//    self-sends whose views must alias the caller's own payload buffer;
//  * view invalidation: exchange_views output is cleared by the next replay
//    on the plan, and a failed (drifted) replay leaves an empty span behind
//    rather than dangling views into recycled buffers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/vpt.hpp"
#include "runtime/comm.hpp"
#include "runtime/stfw_communicator.hpp"

namespace stfw {
namespace {

using core::Rank;
using core::Vpt;
using runtime::Cluster;
using runtime::Comm;

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Skewed pattern with deliberate extremes: ~half the ranks send to a few
/// pseudo-random peers; sizes cycle through zero-length, tiny, and one
/// max-slot payload; every rank also self-sends, and rank 0 fans out wide.
std::vector<OutboundMessage> sends_for(Rank me, Rank num_ranks, int iter,
                                       std::uint32_t big_bytes) {
  std::vector<OutboundMessage> sends;
  auto payload = [&](Rank dest, std::uint32_t size) {
    std::vector<std::byte> bytes(size);
    std::uint64_t h = mix((static_cast<std::uint64_t>(me) << 40) ^
                          (static_cast<std::uint64_t>(dest) << 20) ^
                          static_cast<std::uint64_t>(iter));
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      if (i % 8 == 0) h = mix(h);
      bytes[i] = static_cast<std::byte>(h >> (8 * (i % 8)));
    }
    return bytes;
  };
  // Self-send (delivered as a kSeed view on the zero-copy path).
  sends.push_back({me, payload(me, 24)});
  // Zero-length send: a submessage header with no payload slot.
  sends.push_back({(me + 1) % num_ranks, {}});
  const int fanout = me == 0 ? std::min<int>(10, num_ranks - 1) : 3;
  std::uint64_t h = mix(static_cast<std::uint64_t>(me) * 7919u + 13u);
  for (int j = 0; j < fanout; ++j) {
    h = mix(h);
    const auto dest = static_cast<Rank>(h % static_cast<std::uint64_t>(num_ranks));
    const std::uint32_t size =
        j == 1 ? big_bytes
               : (j % 3 == 0 ? 0u : 16u + static_cast<std::uint32_t>(me % 5) * 7u);
    sends.push_back({dest, payload(dest, size)});
  }
  return sends;
}

std::vector<InboundMessage> materialize(std::span<const runtime::InboundView> views) {
  std::vector<InboundMessage> out;
  out.reserve(views.size());
  for (const runtime::InboundView& v : views)
    out.push_back(InboundMessage{v.source, {v.bytes.begin(), v.bytes.end()}});
  return out;
}

/// Source-stable multiset comparison: every mode sorts deliveries by source
/// already; same-source payload order may legitimately differ between modes,
/// so payloads are compared as per-source sorted multisets.
void sort_inbox(std::vector<InboundMessage>& inbox) {
  std::stable_sort(inbox.begin(), inbox.end(),
                   [](const InboundMessage& a, const InboundMessage& b) {
                     return a.source != b.source ? a.source < b.source : a.bytes < b.bytes;
                   });
}

void run_sweep(Rank num_ranks, int iters, std::uint32_t big_bytes) {
  const Vpt vpt = Vpt::balanced(num_ranks, 2);
  const auto nK = static_cast<std::size_t>(num_ranks);

  // inboxes[mode][rank][iter]
  enum { kUnplanned = 0, kCopying = 1, kViews = 2, kModes = 3 };
  std::vector<std::vector<std::vector<std::vector<InboundMessage>>>> inboxes(
      kModes, std::vector<std::vector<std::vector<InboundMessage>>>(
                  nK, std::vector<std::vector<InboundMessage>>(
                          static_cast<std::size_t>(iters))));

  for (int mode = 0; mode < kModes; ++mode) {
    Cluster cluster(num_ranks);
    cluster.run([&](Comm& comm) {
      const auto me = static_cast<Rank>(comm.rank());
      StfwCommunicator stfw(comm, vpt);
      stfw.set_zero_copy(mode == kViews);
      if (mode == kUnplanned) stfw.set_plan_cache_capacity(0);
      std::shared_ptr<runtime::ExchangePlan> plan;
      if (mode != kUnplanned) plan = stfw.plan(sends_for(me, num_ranks, 0, big_bytes));
      for (int iter = 0; iter < iters; ++iter) {
        const auto sends = sends_for(me, num_ranks, iter, big_bytes);
        auto& slot = inboxes[static_cast<std::size_t>(mode)][static_cast<std::size_t>(me)]
                            [static_cast<std::size_t>(iter)];
        if (mode == kUnplanned) {
          slot = stfw.exchange(sends);
        } else if (mode == kCopying) {
          slot = stfw.exchange(*plan, sends);
        } else {
          std::vector<std::span<const std::byte>> payloads;
          for (const OutboundMessage& s : sends) payloads.emplace_back(s.bytes);
          slot = materialize(stfw.exchange_views(*plan, payloads));
        }
        sort_inbox(slot);
      }
    });
  }

  for (Rank r = 0; r < num_ranks; ++r) {
    for (int iter = 0; iter < iters; ++iter) {
      const auto& want =
          inboxes[kUnplanned][static_cast<std::size_t>(r)][static_cast<std::size_t>(iter)];
      EXPECT_EQ(inboxes[kCopying][static_cast<std::size_t>(r)][static_cast<std::size_t>(iter)],
                want)
          << "copying replay diverged, rank " << r << " iter " << iter;
      EXPECT_EQ(inboxes[kViews][static_cast<std::size_t>(r)][static_cast<std::size_t>(iter)],
                want)
          << "zero-copy views diverged, rank " << r << " iter " << iter;
    }
  }
}

TEST(ZeroCopyPlan, DifferentialK4) { run_sweep(4, 4, 512); }
TEST(ZeroCopyPlan, DifferentialK16) { run_sweep(16, 4, 2048); }
TEST(ZeroCopyPlan, DifferentialK64) { run_sweep(64, 3, 4096); }
TEST(ZeroCopyPlan, DifferentialK256) { run_sweep(256, 2, 1024); }

// The same source buffer feeding multiple payload slots (several sends of
// identical bytes to distinct destinations) and self-send aliasing: the
// self-delivery view must point INTO the caller's payload buffer, not a copy.
TEST(ZeroCopyPlan, AliasedSeedsAndSelfSendViews) {
  const Vpt vpt({2, 2});
  const Rank K = vpt.size();
  Cluster cluster(K);
  cluster.run([&](Comm& comm) {
    const auto me = static_cast<Rank>(comm.rank());
    StfwCommunicator stfw(comm, vpt);
    const std::vector<std::byte> shared(64, static_cast<std::byte>(0xC3));
    std::vector<OutboundMessage> sends;
    for (Rank d = 0; d < K; ++d) sends.push_back({d, shared});  // same bytes everywhere
    auto plan = stfw.plan(sends);
    std::vector<std::span<const std::byte>> payloads;
    for (const OutboundMessage& s : sends) payloads.emplace_back(s.bytes);
    for (int iter = 0; iter < 3; ++iter) {
      const auto views = stfw.exchange_views(*plan, payloads);
      ASSERT_EQ(views.size(), static_cast<std::size_t>(K));
      for (const runtime::InboundView& v : views) {
        ASSERT_EQ(v.bytes.size(), shared.size());
        EXPECT_TRUE(std::equal(v.bytes.begin(), v.bytes.end(), shared.begin()));
        if (v.source == me) {
          // Zero-copy self-delivery: aliases the caller's own send buffer.
          EXPECT_EQ(v.bytes.data(),
                    sends[static_cast<std::size_t>(me)].bytes.data());
        }
      }
    }
  });
}

// Replaying the plan again must invalidate (clear) the views of the previous
// replay, and a replay that throws on drift must leave the span empty — the
// documented never-dangling contract.
TEST(ZeroCopyPlan, ViewsClearedOnNextReplayAndOnDrift) {
  const Vpt vpt({2, 2});
  const Rank K = vpt.size();
  Cluster cluster(K);
  cluster.run([&](Comm& comm) {
    const auto me = static_cast<Rank>(comm.rank());
    StfwCommunicator stfw(comm, vpt);
    std::vector<OutboundMessage> sends;
    sends.push_back({(me + 1) % K, std::vector<std::byte>(32, static_cast<std::byte>(me))});
    auto plan = stfw.plan(sends);
    std::vector<std::span<const std::byte>> payloads;
    for (const OutboundMessage& s : sends) payloads.emplace_back(s.bytes);

    const auto first = stfw.exchange_views(*plan, payloads);
    ASSERT_EQ(first.size(), 1u);
    const auto second = stfw.exchange_views(*plan, payloads);
    ASSERT_EQ(second.size(), 1u);

    // Contract violation: wrong payload count. The replay throws before any
    // traffic and the previous views are gone (empty span, not dangling).
    EXPECT_THROW((void)stfw.exchange_views(*plan, {}), core::Error);
    EXPECT_THROW((void)stfw.exchange_views(*plan, {}), core::Error);
    // Collective recovery: a correct replay still works afterwards.
    const auto again = stfw.exchange_views(*plan, payloads);
    ASSERT_EQ(again.size(), 1u);
    const auto from = (me + K - 1) % K;
    EXPECT_EQ(again[0].source, from);
    EXPECT_EQ(std::vector<std::byte>(again[0].bytes.begin(), again[0].bytes.end()),
              std::vector<std::byte>(32, static_cast<std::byte>(from)));
  });
}

// Pool hygiene: repeated replays over the same plan reuse pooled buffers
// (hits grow, misses plateau) and per-exchange stats report the deltas.
TEST(ZeroCopyPlan, PoolStatsReportReuseAcrossReplays) {
  const Vpt vpt({2, 2, 2});
  const Rank K = vpt.size();
  Cluster cluster(K);
  cluster.run([&](Comm& comm) {
    const auto me = static_cast<Rank>(comm.rank());
    StfwCommunicator stfw(comm, vpt);
    ASSERT_TRUE(stfw.zero_copy_enabled());  // STFW_ZERO_COPY defaults on
    std::vector<OutboundMessage> sends;
    for (Rank d = 0; d < K; ++d)
      if (d != me) sends.push_back({d, std::vector<std::byte>(128, static_cast<std::byte>(d))});
    auto plan = stfw.plan(sends);
    std::vector<std::span<const std::byte>> payloads;
    for (const OutboundMessage& s : sends) payloads.emplace_back(s.bytes);

    (void)stfw.exchange_views(*plan, payloads);  // cold: population pass
    std::int64_t hits = 0;
    for (int iter = 0; iter < 4; ++iter) {
      (void)stfw.exchange_views(*plan, payloads);
      const LocalExchangeStats& s = stfw.last_stats();
      EXPECT_EQ(s.pool_hits + s.pool_misses,
                static_cast<std::int64_t>(plan->layout().messages_sent));
      hits += s.pool_hits;
    }
    // Steady state: inbound frames recycle into outbound gathers, so pooled
    // buffers must actually be getting reused (all ranks send and receive
    // equal frame counts on this all-to-all pattern).
    EXPECT_GT(hits, 0) << "pool never served a warm replay on rank " << me;
    EXPECT_GT(stfw.buffer_pool_stats().reused_bytes, 0u);
  });
}

}  // namespace
}  // namespace stfw
