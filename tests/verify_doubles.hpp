#pragma once

#if !STFW_VERIFY_ENABLED
#error "verify_doubles.hpp is part of the STFW_VERIFY test suite"
#endif

#include <cstdint>

#include "core/sync.hpp"
#include "core/verify_hooks.hpp"

/// \file verify_doubles.hpp
/// Concurrency test doubles for the stfw-verify suite.
///
/// RearmBarrier re-creates, in isolation, the locking hole the exchange-plan
/// work fixed in runtime::Cluster's reusable barrier: the releasing thread
/// rearmed the arrival counter *after* dropping the barrier mutex, racing
/// with any peer that had already moved on to the next round's (locked)
/// arrival. The `leaky` flag selects between the buggy rearm placement and
/// the corrected one, so the same driver exercises both the positive
/// (two-site race report) and negative (clean) detector paths.

namespace stfw::verify_test {

class RearmBarrier {
public:
  RearmBarrier(int n, bool leaky) : n_(n), leaky_(leaky) {}

  /// One barrier round. The last arriver releases the waiters and rearms
  /// count_ — under mu_ when !leaky_, after dropping mu_ when leaky_.
  void arrive() {
    core::MutexLock lock(mu_);
    STFW_VERIFY_WRITE(&count_, "barrier arrive");
    ++count_;
    if (count_ == n_) {
      if (!leaky_) {
        STFW_VERIFY_WRITE(&count_, "locked rearm");
        count_ = 0;
      }
      STFW_VERIFY_WRITE(&gen_, "barrier release");
      ++gen_;
      cv_.notify_all();
      if (leaky_) {
        lock.unlock();
        // The reintroduced bug: peers re-entering arrive() hold mu_ for
        // their counter increment; this write holds nothing.
        STFW_VERIFY_WRITE(&count_, "unlocked rearm");
        count_ = 0;
      }
      return;
    }
    const std::uint64_t g = gen_;
    for (;;) {
      STFW_VERIFY_READ(&gen_, "barrier generation check");
      if (gen_ != g) break;
      cv_.wait(lock);
    }
  }

  /// A peer racing ahead into the next round: takes mu_ and bumps the
  /// counter exactly like arrive()'s entry, without waiting for the round
  /// to complete. This is the locked access the leaky rearm collides with.
  void arrive_next_round() {
    core::MutexLock lock(mu_);
    STFW_VERIFY_WRITE(&count_, "next-round arrive");
    ++count_;
  }

private:
  core::Mutex mu_;
  core::CondVar cv_;
  int n_;
  bool leaky_;
  int count_ = 0;
  std::uint64_t gen_ = 0;
};

}  // namespace stfw::verify_test
