#!/usr/bin/env bash
# Formatting gate: verify (default) or rewrite (--fix) the tree with
# clang-format against the repo-root .clang-format.
#
# Usage:
#   tools/check_format.sh          # dry run, exit 1 on any diff
#   tools/check_format.sh --fix    # rewrite files in place
#
# Skips with exit 0 when clang-format is unavailable (the container image
# ships only gcc), mirroring tools/run_static_analysis.sh.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

FORMAT_BIN="${CLANG_FORMAT:-clang-format}"
if ! command -v "${FORMAT_BIN}" >/dev/null 2>&1; then
  echo "check_format: ${FORMAT_BIN} not found; skipping the format gate." >&2
  echo "check_format: install clang-format (or set CLANG_FORMAT) to enable it." >&2
  exit 0
fi

# tests/lint_corpus/ is excluded: the lint selftest pins exact line/column
# expectations, so corpus files must stay byte-stable.
mapfile -t sources < <(git ls-files '*.cpp' '*.hpp' '*.h' '*.cc' ':!tests/lint_corpus')
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "check_format: no sources found" >&2
  exit 2
fi

if [[ "${1:-}" == "--fix" ]]; then
  "${FORMAT_BIN}" -i --style=file "${sources[@]}"
  echo "check_format: reformatted ${#sources[@]} files."
  exit 0
fi

bad=0
for src in "${sources[@]}"; do
  if ! "${FORMAT_BIN}" --style=file --dry-run --Werror "${src}" >/dev/null 2>&1; then
    echo "needs formatting: ${src}"
    bad=1
  fi
done
if [[ ${bad} -ne 0 ]]; then
  echo "check_format: run tools/check_format.sh --fix" >&2
  exit 1
fi
echo "check_format: clean."
