#!/usr/bin/env python3
"""Validate and diff BENCH_<name>.json perf-regression files.

Schema check (CI's bench-smoke job):

    python3 tools/compare_bench.py --schema BENCH_micro_exchange.json ...

Regression diff between a baseline run and a candidate run:

    python3 tools/compare_bench.py baseline.json candidate.json [--tolerance 0.25]

Overlap gate (CI's bench-smoke job, on BENCH_overlap.json):

    python3 tools/compare_bench.py --overlap-gate BENCH_overlap.json [--tolerance 0.05]

The gate picks the largest K present and fails if the "overlap" row's
wall_ns_per_iter is slower than the "sync" (overlap-off) row's beyond the
tolerance — communication/computation overlap must never cost time.

Zero-copy gate (CI's bench-smoke job, on two BENCH_micro_exchange.json runs):

    python3 tools/compare_bench.py --zero-copy-gate copying.json zerocopy.json

The gate compares the "planned" row at the largest K present in both files:
the zero-copy run (second file) must not be slower than the copying run
(first file, STFW_ZERO_COPY=0) beyond the tolerance -- replacing the
per-submessage copies with pooled scatter-gather must never cost time.

Rows are matched by their "name" key. Time-like metrics (keys ending in _ns,
_us or _ms, or named *time*) are regression-only: the candidate may be faster
by any amount, but slower than baseline by more than the tolerance fails.
Other numeric metrics must match within the tolerance in both directions.
Missing or extra rows fail. Exit status 0 = pass, 1 = regression/mismatch,
2 = malformed input. Missing files, globs that match nothing, and empty
"results" arrays are malformed input: a silent pass over an absent or empty
bench file would defeat the regression gate. Schema: docs/performance.md.
"""

import argparse
import glob
import json
import math
import sys

SCHEMA_VERSION = 1


def expand_paths(patterns):
    """Expand shell-style globs that reached us unexpanded.

    CI invokes this as `compare_bench.py --schema bench-json/BENCH_*.json`; if
    the bench never ran (or wrote nowhere), some shells hand us the literal
    pattern and a bare open() error ("No such file or directory:
    'BENCH_*.json'") buries the real cause. Expand here and fail loudly when a
    pattern matches nothing.
    """
    paths = []
    for pattern in patterns:
        if any(ch in pattern for ch in "*?["):
            matches = sorted(glob.glob(pattern))
            if not matches:
                print(f"error: {pattern!r} matched no files -- did the benchmark "
                      f"run and write its BENCH_*.json (STFW_BENCH_JSON_DIR)?",
                      file=sys.stderr)
                sys.exit(2)
            paths.extend(matches)
        else:
            paths.append(pattern)
    return paths


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        print(f"error: {path} does not exist -- did the benchmark run and write "
              f"its BENCH_*.json (STFW_BENCH_JSON_DIR)?", file=sys.stderr)
        sys.exit(2)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_schema(path, doc):
    """Return a list of problems (empty = schema-valid)."""
    problems = []
    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    for key, kind in (("bench", str), ("schema_version", int),
                      ("config", dict), ("results", list)):
        if key not in doc:
            problems.append(f"{path}: missing key {key!r}")
        elif not isinstance(doc[key], kind):
            problems.append(f"{path}: {key!r} is not a {kind.__name__}")
    if problems:
        return problems
    if doc["schema_version"] != SCHEMA_VERSION:
        problems.append(f"{path}: schema_version {doc['schema_version']} != {SCHEMA_VERSION}")
    if not doc["results"]:
        problems.append(f"{path}: 'results' is empty -- the benchmark produced no "
                        f"rows, which would make any regression diff vacuously pass")
    seen = set()
    for i, row in enumerate(doc["results"]):
        where = f"{path}: results[{i}]"
        if not isinstance(row, dict):
            problems.append(f"{where} is not an object")
            continue
        name = row.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where} has no string 'name'")
            continue
        if name in seen:
            problems.append(f"{where}: duplicate row name {name!r}")
        seen.add(name)
        for key, value in row.items():
            if key == "name":
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float, str)):
                problems.append(f"{where} ({name}): metric {key!r} has unsupported type "
                                f"{type(value).__name__}")
            elif isinstance(value, float) and not math.isfinite(value):
                problems.append(f"{where} ({name}): metric {key!r} is not finite")
    return problems


def is_time_metric(key):
    tokens = key.lower().split("_")
    return any(t in ("ns", "us", "ms", "time") for t in tokens)


def rows_by_name(doc):
    return {row["name"]: row for row in doc["results"]}


def compare(base_path, cand_path, base, cand, tolerance):
    """Return a list of failures (empty = candidate within tolerance)."""
    failures = []
    base_rows, cand_rows = rows_by_name(base), rows_by_name(cand)
    for name in base_rows:
        if name not in cand_rows:
            failures.append(f"row {name!r} present in {base_path} but missing from {cand_path}")
    for name in cand_rows:
        if name not in base_rows:
            failures.append(f"row {name!r} appeared in {cand_path} but not in {base_path}")

    for name in sorted(set(base_rows) & set(cand_rows)):
        b, c = base_rows[name], cand_rows[name]
        for key in sorted(set(b) | set(c)):
            if key == "name":
                continue
            if key not in b or key not in c:
                failures.append(f"{name}: metric {key!r} present in only one run")
                continue
            bv, cv = b[key], c[key]
            if isinstance(bv, str) or isinstance(cv, str):
                if bv != cv:
                    failures.append(f"{name}: {key} changed {bv!r} -> {cv!r}")
                continue
            if bv == cv:
                continue
            scale = max(abs(bv), abs(cv), 1e-12)
            rel = (cv - bv) / scale
            if is_time_metric(key):
                if rel > tolerance:  # slower than baseline beyond tolerance
                    failures.append(f"{name}: {key} regressed {bv:g} -> {cv:g} "
                                    f"(+{rel * 100:.1f}% > {tolerance * 100:.0f}%)")
            elif abs(rel) > tolerance:
                failures.append(f"{name}: {key} drifted {bv:g} -> {cv:g} "
                                f"({rel * 100:+.1f}% beyond {tolerance * 100:.0f}%)")
    return failures


def overlap_gate(path, doc, tolerance):
    """Return a list of failures (empty = overlap pays for itself).

    Operates on one BENCH_overlap.json: at the largest K present, the
    "overlap" schedule must not be slower than the "sync" (overlap-off)
    schedule beyond the tolerance. Structural problems (no such rows, no
    timing metric) are reported as failures too -- a gate that cannot find
    its rows must not pass.
    """
    rows = [r for r in doc["results"] if isinstance(r.get("ranks"), int)
            and not isinstance(r.get("ranks"), bool)]
    if not rows:
        return [f"{path}: no rows carry an integer 'ranks' metric"]
    k = max(r["ranks"] for r in rows)
    by_mode = {r.get("mode"): r for r in rows if r["ranks"] == k}
    missing = [m for m in ("sync", "overlap") if m not in by_mode]
    if missing:
        return [f"{path}: no {m!r} row at K={k}" for m in missing]
    times = {}
    for mode in ("sync", "overlap"):
        v = by_mode[mode].get("wall_ns_per_iter")
        if isinstance(v, bool) or not isinstance(v, (int, float)) or v <= 0:
            return [f"{path}: {mode!r} row at K={k} has no positive 'wall_ns_per_iter'"]
        times[mode] = v
    rel = times["overlap"] / times["sync"] - 1.0
    if rel > tolerance:
        return [f"{path}: overlap slower than sync at K={k}: "
                f"{times['overlap']:g} ns vs {times['sync']:g} ns "
                f"(+{rel * 100:.1f}% > {tolerance * 100:.0f}%)"]
    print(f"ok: {path} overlap gate at K={k}: {times['overlap']:g} ns vs "
          f"{times['sync']:g} ns sync ({-rel * 100:+.1f}% faster)")
    return []


def planned_time_at_largest_k(path, doc, k=None):
    """(K, wall_ns_per_exchange) of the "planned" row at the largest K
    (or at an imposed K), or (None, [failures])."""
    rows = [r for r in doc["results"] if isinstance(r.get("ranks"), int)
            and not isinstance(r.get("ranks"), bool)]
    if not rows:
        return None, [f"{path}: no rows carry an integer 'ranks' metric"]
    if k is None:
        k = max(r["ranks"] for r in rows)
    planned = [r for r in rows if r["ranks"] == k and r.get("mode") == "planned"]
    if not planned:
        return None, [f"{path}: no 'planned' row at K={k}"]
    v = planned[0].get("wall_ns_per_exchange")
    if isinstance(v, bool) or not isinstance(v, (int, float)) or v <= 0:
        return None, [f"{path}: 'planned' row at K={k} has no positive "
                      f"'wall_ns_per_exchange'"]
    return (k, v), []


def zero_copy_gate(base_path, base, cand_path, cand, tolerance):
    """Return a list of failures (empty = zero-copy pays for itself).

    base is the copying run (STFW_ZERO_COPY=0), cand the zero-copy run; both
    must hold a "planned" row at a common largest K, and the zero-copy replay
    must not be slower beyond the tolerance.
    """
    got, failures = planned_time_at_largest_k(base_path, base)
    if failures:
        return failures
    k, base_ns = got
    got, failures = planned_time_at_largest_k(cand_path, cand, k)
    if failures:
        return failures
    _, cand_ns = got
    rel = cand_ns / base_ns - 1.0
    if rel > tolerance:
        return [f"zero-copy planned replay slower than copying at K={k}: "
                f"{cand_ns:g} ns ({cand_path}) vs {base_ns:g} ns ({base_path}) "
                f"(+{rel * 100:.1f}% > {tolerance * 100:.0f}%)"]
    print(f"ok: zero-copy gate at K={k}: {cand_ns:g} ns vs {base_ns:g} ns "
          f"copying ({-rel * 100:+.1f}% faster)")
    return []


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="+", metavar="JSON",
                    help="--schema: one or more files; diff: baseline then candidate")
    ap.add_argument("--schema", action="store_true",
                    help="only validate the files against the BENCH_*.json schema")
    ap.add_argument("--overlap-gate", action="store_true",
                    help="gate each file: 'overlap' must not be slower than "
                         "'sync' at the largest K present")
    ap.add_argument("--zero-copy-gate", action="store_true",
                    help="gate a (copying, zero-copy) file pair: the zero-copy "
                         "'planned' row must not be slower at the largest K")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="relative tolerance for the diff (default 0.25)")
    args = ap.parse_args()

    docs = [(path, load(path)) for path in expand_paths(args.files)]
    problems = []
    for path, doc in docs:
        problems += check_schema(path, doc)
    if problems:
        for p in problems:
            print(f"SCHEMA FAIL: {p}", file=sys.stderr)
        sys.exit(2)

    if args.schema:
        for path, doc in docs:
            print(f"ok: {path} ({doc['bench']}, {len(doc['results'])} rows)")
        return

    if args.overlap_gate:
        if args.tolerance < 0:
            print("error: tolerance must be >= 0", file=sys.stderr)
            sys.exit(2)
        failures = []
        for path, doc in docs:
            failures += overlap_gate(path, doc, args.tolerance)
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            sys.exit(1)
        return

    if args.zero_copy_gate:
        if args.tolerance < 0:
            print("error: tolerance must be >= 0", file=sys.stderr)
            sys.exit(2)
        if len(docs) != 2:
            print("error: --zero-copy-gate needs exactly two files "
                  "(copying zero-copy)", file=sys.stderr)
            sys.exit(2)
        (base_path, base), (cand_path, cand) = docs
        failures = zero_copy_gate(base_path, base, cand_path, cand, args.tolerance)
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            sys.exit(1)
        return

    if len(docs) != 2:
        print("error: diff mode needs exactly two files (baseline candidate)", file=sys.stderr)
        sys.exit(2)
    if args.tolerance < 0:
        print("error: tolerance must be >= 0", file=sys.stderr)
        sys.exit(2)
    (base_path, base), (cand_path, cand) = docs
    failures = compare(base_path, cand_path, base, cand, args.tolerance)
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        print(f"{len(failures)} failure(s) comparing {cand_path} against {base_path}",
              file=sys.stderr)
        sys.exit(1)
    common = len(set(r["name"] for r in base["results"]))
    print(f"ok: {cand_path} within {args.tolerance * 100:.0f}% of {base_path} ({common} rows)")


if __name__ == "__main__":
    main()
