#!/usr/bin/env bash
# Run clang-tidy over the project's compile database and fail on any finding.
#
# Usage:
#   tools/run_static_analysis.sh [build-dir]
#
# With no argument, configures the `tidy` CMake preset (build-tidy/) to get a
# fresh compile_commands.json. The check set lives in .clang-tidy at the repo
# root; WarningsAsErrors there makes every finding fatal, so a zero exit
# means the tree is at the zero-warning baseline.
#
# The container image may not ship clang-tidy (the repo's own toolchain is
# gcc). In that case the gate is skipped with exit 0 and a notice, so CI
# lanes without LLVM stay green while developer machines with clang-tidy
# get the full gate.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY_BIN}" >/dev/null 2>&1; then
  echo "run_static_analysis: ${TIDY_BIN} not found; skipping the clang-tidy gate." >&2
  echo "run_static_analysis: install clang-tidy (or set CLANG_TIDY) to enable it." >&2
  exit 0
fi

build_dir="${1:-}"
if [[ -z "${build_dir}" ]]; then
  build_dir="build-tidy"
  cmake --preset tidy >/dev/null
fi
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_static_analysis: ${build_dir}/compile_commands.json missing;" >&2
  echo "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the tidy preset does)." >&2
  exit 2
fi

# First-party translation units only; third-party headers are filtered by
# HeaderFilterRegex in .clang-tidy.
mapfile -t sources < <(git ls-files 'src/*.cpp' 'tests/*.cpp' 'tools/*.cpp' \
                                    'bench/*.cpp' 'examples/*.cpp')
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "run_static_analysis: no sources found" >&2
  exit 2
fi

jobs="$(nproc 2>/dev/null || echo 2)"
runner="$(command -v run-clang-tidy || true)"
status=0
if [[ -n "${runner}" ]]; then
  "${runner}" -clang-tidy-binary "${TIDY_BIN}" -p "${build_dir}" -j "${jobs}" -quiet \
    "${sources[@]/#/${repo_root}/}" || status=$?
else
  for src in "${sources[@]}"; do
    echo "-- clang-tidy ${src}"
    "${TIDY_BIN}" -p "${build_dir}" --quiet "${src}" || status=$?
  done
fi

if [[ ${status} -ne 0 ]]; then
  echo "run_static_analysis: clang-tidy found new issues (see above)." >&2
  exit 1
fi
echo "run_static_analysis: clean."
