#!/usr/bin/env bash
# Static-analysis driver: clang-tidy, stfw-lint, and Clang thread-safety
# analysis as selectable stages, each failing on any finding.
#
# Usage:
#   tools/run_static_analysis.sh [options] [build-dir]
#
#   --tidy                run clang-tidy over the compile database
#   --lint                run tools/stfw_lint.py (selftest + tree)
#   --tsa                 build the `tsa` preset (-Wthread-safety as errors)
#   --verify              build the `verify` preset and run the stfw-verify
#                         schedule suites (ctest -L verify)
#   --all                 all four stages
#   --changed-only[=REF]  restrict tidy/lint to files changed vs REF
#                         (default: merge base with origin/main)
#
# With no stage flag the historical default runs: clang-tidy plus stfw-lint.
# [build-dir] only affects --tidy; with no argument the `tidy` CMake preset
# (build-tidy/) is configured to get a fresh compile_commands.json. The check
# set lives in .clang-tidy at the repo root; WarningsAsErrors there makes
# every finding fatal, so a zero exit means the tree is at the zero-warning
# baseline.
#
# The container image may not ship LLVM (the repo's own toolchain is gcc).
# Stages that need a missing tool are skipped with exit 0 and a notice, so CI
# lanes without LLVM stay green while machines with clang get the full gates.
# stfw-lint only needs a Python 3 interpreter.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

run_tidy=0
run_lint=0
run_tsa=0
run_verify=0
changed_base=""
changed_only=0
build_dir=""
for arg in "$@"; do
  case "${arg}" in
    --tidy) run_tidy=1 ;;
    --lint) run_lint=1 ;;
    --tsa) run_tsa=1 ;;
    --verify) run_verify=1 ;;
    --all) run_tidy=1; run_lint=1; run_tsa=1; run_verify=1 ;;
    --changed-only) changed_only=1 ;;
    --changed-only=*) changed_only=1; changed_base="${arg#--changed-only=}" ;;
    --help|-h)
      sed -n '2,27p' "${BASH_SOURCE[0]}" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    -*)
      echo "run_static_analysis: unknown option '${arg}' (try --help)" >&2
      exit 2
      ;;
    *) build_dir="${arg}" ;;
  esac
done
if [[ ${run_tidy} -eq 0 && ${run_lint} -eq 0 && ${run_tsa} -eq 0 \
      && ${run_verify} -eq 0 ]]; then
  run_tidy=1
  run_lint=1
fi

# First-party translation units; the lint corpus under tests/lint_corpus/
# deliberately violates the rules and must never enter the tidy/format sets
# (git pathspec '*' crosses directory separators, so 'tests/*.cpp' would
# otherwise pick it up).
list_sources() {
  git ls-files 'src/*.cpp' 'tests/*.cpp' 'tools/*.cpp' 'bench/*.cpp' \
               'examples/*.cpp' ':!tests/lint_corpus'
}

# With --changed-only, narrow to files touched since the merge base so PR
# lanes only pay for what the PR changed.
changed_filter() {
  if [[ ${changed_only} -eq 0 ]]; then
    cat
    return
  fi
  local base=""
  if [[ -n "${changed_base}" ]]; then
    base="$(git merge-base HEAD "${changed_base}" 2>/dev/null || true)"
  else
    base="$(git merge-base HEAD origin/main 2>/dev/null \
            || git merge-base HEAD main 2>/dev/null || true)"
  fi
  if [[ -z "${base}" ]]; then
    echo "run_static_analysis: --changed-only: no merge base found; checking everything" >&2
    cat
    return
  fi
  # Two-dot against the working tree so uncommitted edits count too.
  sort - <(git diff --name-only "${base}" -- | sort) \
    | uniq -d
}

overall=0

# ---------------------------------------------------------------------- tidy
if [[ ${run_tidy} -eq 1 ]]; then
  TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
  if ! command -v "${TIDY_BIN}" >/dev/null 2>&1; then
    echo "run_static_analysis: ${TIDY_BIN} not found; skipping the clang-tidy gate." >&2
    echo "run_static_analysis: install clang-tidy (or set CLANG_TIDY) to enable it." >&2
  else
    tidy_dir="${build_dir}"
    if [[ -z "${tidy_dir}" ]]; then
      tidy_dir="build-tidy"
      cmake --preset tidy >/dev/null
    fi
    if [[ ! -f "${tidy_dir}/compile_commands.json" ]]; then
      echo "run_static_analysis: ${tidy_dir}/compile_commands.json missing;" >&2
      echo "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the tidy preset does)." >&2
      exit 2
    fi
    mapfile -t sources < <(list_sources | changed_filter)
    if [[ ${#sources[@]} -eq 0 ]]; then
      echo "run_static_analysis: tidy: no sources in scope; skipping."
    else
      jobs="$(nproc 2>/dev/null || echo 2)"
      runner="$(command -v run-clang-tidy || true)"
      status=0
      if [[ -n "${runner}" ]]; then
        "${runner}" -clang-tidy-binary "${TIDY_BIN}" -p "${tidy_dir}" -j "${jobs}" -quiet \
          "${sources[@]/#/${repo_root}/}" || status=$?
      else
        for src in "${sources[@]}"; do
          echo "-- clang-tidy ${src}"
          "${TIDY_BIN}" -p "${tidy_dir}" --quiet "${src}" || status=$?
        done
      fi
      if [[ ${status} -ne 0 ]]; then
        echo "run_static_analysis: clang-tidy found new issues (see above)." >&2
        overall=1
      else
        echo "run_static_analysis: clang-tidy clean (${#sources[@]} files)."
      fi
    fi
  fi
fi

# ---------------------------------------------------------------------- lint
if [[ ${run_lint} -eq 1 ]]; then
  PYTHON_BIN="${PYTHON:-python3}"
  if ! command -v "${PYTHON_BIN}" >/dev/null 2>&1; then
    echo "run_static_analysis: ${PYTHON_BIN} not found; skipping the stfw-lint gate." >&2
  else
    if ! "${PYTHON_BIN}" tools/stfw_lint.py --selftest; then
      echo "run_static_analysis: stfw-lint selftest failed (the linter itself regressed)." >&2
      overall=1
    fi
    mapfile -t lint_paths < <(git ls-files 'src/*' 'tests/*' 'tools/*' 'bench/*' \
                                           'examples/*' ':!tests/lint_corpus' \
                              | grep -E '\.(cpp|hpp|h|cc)$' | changed_filter)
    if [[ ${changed_only} -eq 1 && ${#lint_paths[@]} -eq 0 ]]; then
      echo "run_static_analysis: stfw-lint: no changed sources; skipping."
    elif [[ ${changed_only} -eq 1 ]]; then
      "${PYTHON_BIN}" tools/stfw_lint.py "${lint_paths[@]}" || overall=1
    else
      "${PYTHON_BIN}" tools/stfw_lint.py || overall=1
    fi
  fi
fi

# ----------------------------------------------------------------------- tsa
if [[ ${run_tsa} -eq 1 ]]; then
  TSA_CXX="${CLANGXX:-clang++}"
  if ! command -v "${TSA_CXX}" >/dev/null 2>&1; then
    echo "run_static_analysis: ${TSA_CXX} not found; skipping the thread-safety gate." >&2
    echo "run_static_analysis: install clang (or set CLANGXX) to enable it." >&2
  else
    if cmake --preset tsa -DCMAKE_CXX_COMPILER="${TSA_CXX}" \
        && cmake --build --preset tsa; then
      echo "run_static_analysis: thread-safety analysis clean."
    else
      echo "run_static_analysis: -Wthread-safety reported errors (see above)." >&2
      overall=1
    fi
  fi
fi

# -------------------------------------------------------------------- verify
# Dynamic verification (docs/validation.md, Layer 5): build with STFW_VERIFY=ON
# and run the stfw-verify suites — happens-before race detection plus the
# exhaustive small-config sweep and seeded random schedules. Failing schedules
# print a replay seed; STFW_VERIFY_SCHEDULE=<seed> reruns exactly that one.
if [[ ${run_verify} -eq 1 ]]; then
  if ! command -v cmake >/dev/null 2>&1; then
    echo "run_static_analysis: cmake not found; skipping the verify gate." >&2
  else
    if cmake --preset verify \
        && cmake --build --preset verify \
        && ctest --test-dir build-verify -L verify --output-on-failure; then
      echo "run_static_analysis: stfw-verify schedules clean."
    else
      echo "run_static_analysis: stfw-verify found races or oracle violations (see above)." >&2
      overall=1
    fi
  fi
fi

if [[ ${overall} -ne 0 ]]; then
  echo "run_static_analysis: FAILED (see stage output above)." >&2
  exit 1
fi
echo "run_static_analysis: all requested stages clean."
