// stfw command-line driver.
//
// Evaluates BL and STFW schemes for an SpMV communication workload and
// prints the Table 2/3-style metric rows, without writing any code:
//
//   stfw_cli --matrix gupta2 --ranks 512 --machine bgq
//   stfw_cli --mtx /path/to/matrix.mtx --ranks 256 --dims 4,4,4,4
//   stfw_cli --matrix pattern1 --ranks 1024 --machine xk7
//            --entry-bytes 2048 --partitioner block --map-vpt
//
// Options:
//   --matrix NAME        Table 1 stand-in (see --list)
//   --mtx PATH           MatrixMarket file instead of a generator
//   --scale S            generator scale for --matrix (default 0.08)
//   --ranks K            number of processes (default 256)
//   --dims a,b,c         explicit VPT dimensions (may repeat); default:
//                        BL + every balanced dimension for K
//   --machine M          bgq | xk7 | xc40 (default bgq)
//   --partitioner P      hypergraph | block | cyclic | random (default
//                        hypergraph)
//   --entry-bytes B      payload bytes per communicated x entry (default 8)
//   --map-vpt            apply the Section 8 VPT mapping optimizer
//   --seed N             generator/partitioner seed (default 1)
//   --list               print the known matrix names and exit

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/vpt.hpp"
#include "mapping/mapping.hpp"
#include "netsim/machine.hpp"
#include "partition/partitioner.hpp"
#include "sim/bsp_simulator.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "spmv/distributed.hpp"

using namespace stfw;

namespace {

struct Options {
  std::string matrix = "gupta2";
  std::string mtx_path;
  double scale = 0.08;
  core::Rank ranks = 256;
  std::vector<std::vector<int>> dims;
  std::string machine = "bgq";
  std::string partitioner = "hypergraph";
  std::uint32_t entry_bytes = 8;
  bool map_vpt = false;
  std::uint64_t seed = 1;
};

std::vector<int> parse_dims(const std::string& spec) {
  std::vector<int> dims;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    dims.push_back(std::atoi(spec.substr(pos, comma - pos).c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  core::require(!dims.empty(), "--dims: expected a comma-separated list");
  return dims;
}

[[noreturn]] void usage_error(const char* msg) {
  std::fprintf(stderr, "stfw_cli: %s (see the header of tools/stfw_cli.cpp)\n", msg);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--matrix") {
      o.matrix = value();
    } else if (arg == "--mtx") {
      o.mtx_path = value();
    } else if (arg == "--scale") {
      o.scale = std::atof(value().c_str());
    } else if (arg == "--ranks") {
      o.ranks = std::atoi(value().c_str());
    } else if (arg == "--dims") {
      o.dims.push_back(parse_dims(value()));
    } else if (arg == "--machine") {
      o.machine = value();
    } else if (arg == "--partitioner") {
      o.partitioner = value();
    } else if (arg == "--entry-bytes") {
      o.entry_bytes = static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (arg == "--map-vpt") {
      o.map_vpt = true;
    } else if (arg == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(value().c_str()));
    } else if (arg == "--list") {
      for (const auto& m : sparse::paper_matrices())
        std::printf("%-20s %-22s rows=%-8d nnz=%lld\n", std::string(m.name).c_str(),
                    std::string(m.kind).c_str(), m.rows, static_cast<long long>(m.nnz));
      std::exit(0);
    } else {
      usage_error(("unknown option " + arg).c_str());
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse(argc, argv);

    sparse::Csr matrix;
    std::string source;
    if (!o.mtx_path.empty()) {
      matrix = sparse::read_matrix_market_file(o.mtx_path);
      if (!matrix.has_symmetric_pattern()) matrix = matrix.symmetrized();
      source = o.mtx_path;
    } else {
      const auto spec = sparse::scaled_spec(sparse::find_paper_matrix(o.matrix), o.scale,
                                            std::min(sparse::find_paper_matrix(o.matrix).rows,
                                                     4 * o.ranks));
      matrix = sparse::generate(spec, o.seed);
      source = o.matrix + " stand-in (scale " + std::to_string(o.scale) + ")";
    }
    const auto stats = sparse::degree_stats(matrix);
    std::printf("matrix: %s — %d rows, %lld nnz, max degree %lld, cv %.2f\n", source.c_str(),
                matrix.num_rows(), static_cast<long long>(matrix.num_nonzeros()),
                static_cast<long long>(stats.max_degree), stats.cv);

    std::vector<std::int32_t> parts;
    if (o.partitioner == "hypergraph") {
      partition::PartitionOptions popts;
      popts.num_parts = o.ranks;
      popts.seed = o.seed;
      parts = partition::partition_rows(matrix, popts);
    } else if (o.partitioner == "block") {
      parts = partition::block_partition_rows(matrix, o.ranks);
    } else if (o.partitioner == "cyclic") {
      parts = partition::cyclic_partition(matrix.num_rows(), o.ranks);
    } else if (o.partitioner == "random") {
      parts = partition::random_partition(matrix.num_rows(), o.ranks, o.seed);
    } else {
      usage_error("unknown partitioner");
    }

    const spmv::SpmvProblem problem(matrix, parts, o.ranks, /*build_plans=*/false);
    sim::CommPattern pattern = problem.comm_pattern(o.entry_bytes);
    std::printf("pattern: %lld messages, %.1f avg / %lld max per rank, %llu payload bytes\n",
                static_cast<long long>(pattern.total_messages()), pattern.avg_send_count(),
                static_cast<long long>(pattern.max_send_count()),
                static_cast<unsigned long long>(pattern.total_payload_bytes()));

    const netsim::Machine machine = o.machine == "xk7"    ? netsim::Machine::cray_xk7(o.ranks)
                                    : o.machine == "xc40" ? netsim::Machine::cray_xc40(o.ranks)
                                    : o.machine == "bgq"
                                        ? netsim::Machine::blue_gene_q(o.ranks)
                                        : (usage_error("unknown machine"),
                                           netsim::Machine::blue_gene_q(o.ranks));
    std::printf("machine: %s\n\n", machine.name().c_str());

    std::vector<core::Vpt> vpts;
    if (o.dims.empty()) {
      vpts.push_back(core::Vpt::direct(o.ranks));
      if (core::is_pow2(o.ranks))
        for (int n = 2; n <= core::floor_log2(o.ranks); ++n)
          vpts.push_back(core::Vpt::balanced(o.ranks, n));
    } else {
      for (const auto& d : o.dims) vpts.push_back(core::Vpt(d));
    }

    std::printf("%-22s | %8s %8s %10s | %10s %8s\n", "VPT", "mmax", "mavg", "vol(words)",
                "comm(us)", "buf(KB)");
    for (const core::Vpt& vpt : vpts) {
      core::require(vpt.size() == o.ranks, "--dims: product must equal --ranks");
      sim::CommPattern run_pattern = problem.comm_pattern(o.entry_bytes);
      if (o.map_vpt && vpt.dim() > 1) {
        const auto perm = mapping::optimize_vpt_mapping(run_pattern, vpt, {o.seed});
        run_pattern = mapping::permute_pattern(run_pattern, perm);
      }
      sim::SimOptions sopts;
      sopts.machine = &machine;
      const sim::SimResult r = sim::simulate_exchange(vpt, run_pattern, sopts);
      std::printf("%-22s | %8lld %8.1f %10lld | %10.0f %8.1f\n", vpt.to_string().c_str(),
                  static_cast<long long>(r.metrics.max_send_count()),
                  r.metrics.avg_send_count(),
                  static_cast<long long>(r.metrics.total_volume_words()), r.comm_time_us,
                  static_cast<double>(r.metrics.max_buffer_bytes()) / 1024.0);
    }
    return 0;
  } catch (const core::Error& e) {
    std::fprintf(stderr, "stfw_cli: %s\n", e.what());
    return 1;
  }
}
