#!/usr/bin/env python3
"""stfw-lint: repo-specific static checks the generic clang-tidy set cannot name.

Rules (each carries a fix-it hint; suppress with
`// stfw-lint: allow(<rule>) -- <reason>` on the flagged line or the line
directly above it — the reason is mandatory):

  l1-getenv        no raw std::getenv outside src/core/env.cpp. Every knob
                   goes through the strict core::env_* parsers so a typo'd
                   value throws core::ValidationError instead of being
                   silently truncated.
  l2-wire-reserve  no reserve()/resize() sized from a freshly-deserialized
                   wire field before a bounds check — the exact bug class of
                   the fuzz-found wire.cpp over-allocation (PR 3).
  l3-deadline      no recv / wait_message / barrier / allgather call inside a
                   resilient / settlement / watchdog / timeout code path
                   without a Deadline argument; a lost peer must not hang
                   recovery.
  l4-catch-all     `catch (...)` only at the sanctioned Cluster::run worker
                   sites (src/runtime/comm.cpp), where per-rank failures are
                   aggregated; anywhere else it swallows protocol errors.
  l5-nodiscard     public header APIs returning status/stats types
                   (*Stats, *Result, *Counters, *Failure, *Totals,
                   *Decision) must be [[nodiscard]].
  l6-raw-sync      no raw std::thread / std::mutex / std::condition_variable
                   (or their lock/variant types) outside core/sync.hpp and
                   src/verify/. The core wrappers carry the thread-safety
                   annotations and the stfw-verify event hooks; a raw
                   primitive is invisible to both TSA and the race detector.
  l7-epoch-check   a decode_frame() call on a recovery/membership path must
                   be followed by an epoch comparison before the frame is
                   acted on — a handler that trusts a frame without checking
                   it against the current membership epoch will happily apply
                   stale routing decisions from before a rank died.

Engines: the default `text` engine is a dependency-free tokenizer (comments
and strings stripped, clang-format-shaped function tracking) so the tool runs
identically on gcc-only boxes and in CI. `--engine=clang` upgrades function
extents via libclang over a compile_commands.json when the `clang` python
package is importable, and falls back to `text` (with a notice) when not.

Exit status: 0 clean, 1 findings (or failed --selftest), 2 usage error.

Self-test: `--selftest` runs the engine over tests/lint_corpus/, where every
seeded violation line carries a `// lint-expect: <rule>` marker; the tool
must flag exactly the marked lines.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

RULES = {
    "l1-getenv": (
        "raw std::getenv outside core/env",
        "route the variable through core::env_double/env_int/env_u64/env_flag/"
        "env_string (core/env.hpp) so malformed values throw ValidationError",
    ),
    "l2-wire-reserve": (
        "reserve()/resize() sized from an unchecked wire field",
        "bounds-check the deserialized count first, e.g. "
        "require(count * kEntryBytes <= wire.size() - pos, ...), then reserve",
    ),
    "l3-deadline": (
        "blocking call without a Deadline in a recovery/timeout path",
        "use the Deadline overload (e.g. Deadline::in(options.stage_deadline)) "
        "so a lost peer cannot hang the recovery path",
    ),
    "l4-catch-all": (
        "catch (...) outside the sanctioned Cluster::run sites",
        "let the exception propagate to Cluster::run's worker-thread boundary, "
        "which aggregates per-rank failures into MultiRankError",
    ),
    "l5-nodiscard": (
        "status/stats-returning public API without [[nodiscard]]",
        "mark the declaration [[nodiscard]]; silently discarding a status or "
        "stats return value loses the outcome of the call",
    ),
    "l6-raw-sync": (
        "raw standard-library sync primitive outside core/sync.hpp",
        "use core::Mutex/core::MutexLock/core::CondVar/core::Thread "
        "(core/sync.hpp): the wrappers carry the Clang thread-safety "
        "annotations and the STFW_VERIFY hook instrumentation",
    ),
    "l7-epoch-check": (
        "decode_frame() on a recovery path with no epoch comparison",
        "compare frame.header.member_epoch (or the notice's membership_epoch) "
        "against the current membership epoch — nack or ignore stale frames — "
        "before consuming the frame",
    ),
    "suppression": (
        "malformed suppression comment",
        "write `// stfw-lint: allow(<rule>) -- <reason>`; the reason is "
        "mandatory (docs/validation.md, suppression policy)",
    ),
}

# catch (...) is sanctioned only here: the rank-thread boundary and the error
# partitioning loops of Cluster::run.
CATCH_ALL_ALLOWLIST = {("src/runtime/comm.cpp", "run")}

GETENV_EXEMPT_FILES = {"src/core/env.cpp"}

# The one place raw primitives are allowed to live (the annotated wrappers
# themselves + the hook seam, whose cv_wait signature is expressed in
# std::unique_lock terms), and the verify engine, which schedules the
# wrapped primitives and therefore cannot be built on top of them.
RAW_SYNC_EXEMPT_FILES = {"src/core/sync.hpp", "src/core/verify_hooks.hpp"}
RAW_SYNC_EXEMPT_PREFIXES = ("src/verify/",)

L3_FUNCTION_RE = re.compile(r"resilient|settle|watchdog|timeout|deadlock|recover")
L3_CALL_RE = re.compile(r"\b(recv|wait_message|barrier|allgather)\s*\(")
L5_TYPE_SUFFIXES = r"(?:Stats|Result|Counters|Failure|Totals|Decision)"

SCAN_DIRS = ("src", "tests", "tools", "bench", "examples")
EXCLUDE_PREFIXES = ("tests/lint_corpus",)
SOURCE_EXTS = (".cpp", ".hpp", ".cc", ".h")


@dataclass
class Finding:
    rule: str
    file: str
    line: int  # 1-based
    message: str

    def render(self) -> str:
        return (f"{self.file}:{self.line}: [{self.rule}] {self.message}\n"
                f"    fix-it: {RULES[self.rule][1]}")


@dataclass
class FileText:
    path: str  # repo-relative, forward slashes
    code: list[str]  # per-line, comments/strings blanked, line count preserved
    comments: list[str]  # per-line comment text (for allow/expect markers)
    allows: dict[int, set[str]] = field(default_factory=dict)  # 0-based line
    bad_allows: list[int] = field(default_factory=list)
    expects: dict[int, set[str]] = field(default_factory=dict)


def strip_code(text: str) -> tuple[list[str], list[str]]:
    """Blank out comments and string/char literals, preserving line structure.

    Returns (code_lines, comment_lines): comment text is preserved separately
    so suppression and corpus markers survive the stripping.
    """
    code: list[str] = []
    comments: list[str] = []
    cur_code: list[str] = []
    cur_comment: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                cur_code.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                cur_code.append("'")
                i += 1
                continue
            cur_code.append(c)
        elif state in ("line_comment", "block_comment"):
            if state == "block_comment" and c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            cur_comment.append(c)
        elif state == "string":
            if c == "\\":
                i += 2
                continue
            if c == '"':
                state = "code"
                cur_code.append('"')
        elif state == "char":
            if c == "\\":
                i += 2
                continue
            if c == "'":
                state = "code"
                cur_code.append("'")
        i += 1
    code.append("".join(cur_code))
    comments.append("".join(cur_comment))
    return code, comments


ALLOW_RE = re.compile(r"stfw-lint:\s*allow\(([a-z0-9-]+)\)(\s*--\s*\S.*)?")
EXPECT_RE = re.compile(r"lint-expect:\s*([a-z0-9-]+)")


def load_file(repo_root: str, rel: str) -> FileText:
    with open(os.path.join(repo_root, rel), encoding="utf-8", errors="replace") as f:
        text = f.read()
    code, comments = strip_code(text)
    ft = FileText(path=rel, code=code, comments=comments)
    for idx, comment in enumerate(comments):
        for m in ALLOW_RE.finditer(comment):
            if m.group(2) is None:
                ft.bad_allows.append(idx)
            else:
                ft.allows.setdefault(idx, set()).add(m.group(1))
        for m in EXPECT_RE.finditer(comment):
            ft.expects.setdefault(idx, set()).add(m.group(1))
    return ft


# --- function tracking (text engine) ----------------------------------------

_HEAD_SKIP = re.compile(
    r"^\s*(#|\}|\{|namespace\b|using\b|typedef\b|struct\b|class\b|enum\b|"
    r"template\b|extern\b|return\b|if\b|else\b|for\b|while\b|switch\b|case\b|"
    r"public:|private:|protected:|static_assert\b)")
_NAME_BEFORE_PAREN = re.compile(r"([A-Za-z_~]\w*)\s*\(")


def function_spans(code: list[str]) -> list[str | None]:
    """Name of the enclosing function definition for every line, or None.

    Relies on the repo's clang-format shape: definitions start at column 0
    and the closing brace of the body sits alone at column 0.
    """
    spans: list[str | None] = [None] * len(code)
    current: str | None = None
    for i, line in enumerate(code):
        if current is not None:
            spans[i] = current
            if line.startswith("}"):
                current = None
            continue
        if not line or line[0].isspace() or _HEAD_SKIP.match(line):
            continue
        m = _NAME_BEFORE_PAREN.search(line)
        if not m:
            continue
        # A definition opens a brace before any semicolon (look a few lines
        # ahead for multi-line signatures); a declaration ends in ';'.
        is_def = False
        for j in range(i, min(i + 8, len(code))):
            if "{" in code[j]:
                is_def = True
                break
            if ";" in code[j]:
                break
        if not is_def:
            continue
        current = m.group(1)
        spans[i] = current
        if line.count("}") and line.strip().endswith("}"):  # one-liner
            current = None
    return spans


def try_clang_spans(ft: FileText, repo_root: str, compile_db: str | None):
    """libclang-backed function extents; returns None when unavailable."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
        args = []
        if compile_db:
            db = cindex.CompilationDatabase.fromDirectory(os.path.dirname(compile_db))
            cmds = db.getCompileCommands(os.path.join(repo_root, ft.path))
            if cmds:
                args = [a for a in list(cmds[0].arguments)[1:] if a != ft.path]
        tu = index.parse(os.path.join(repo_root, ft.path), args=args)
        spans: list[str | None] = [None] * len(ft.code)
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (cindex.CursorKind.FUNCTION_DECL,
                            cindex.CursorKind.CXX_METHOD) and cur.is_definition():
                if not cur.location.file or \
                        os.path.abspath(cur.location.file.name) != \
                        os.path.abspath(os.path.join(repo_root, ft.path)):
                    continue
                for ln in range(cur.extent.start.line - 1, cur.extent.end.line):
                    if 0 <= ln < len(spans):
                        spans[ln] = cur.spelling
        return spans
    except Exception as e:  # pragma: no cover - depends on local libclang
        print(f"stfw-lint: clang engine failed on {ft.path} ({e}); "
              "falling back to text engine", file=sys.stderr)
        return None


def gather_call(code: list[str], line: int, start: int) -> str:
    """Text of a call from its opening paren until parens balance (<=8 lines)."""
    depth = 0
    parts: list[str] = []
    for ln in range(line, min(line + 8, len(code))):
        seg = code[ln][start if ln == line else 0:]
        for k, ch in enumerate(seg):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    parts.append(seg[:k + 1])
                    return "".join(parts)
        parts.append(seg)
    return "".join(parts)


# --- rules -------------------------------------------------------------------

GETENV_RE = re.compile(r"\b(?:std\s*::\s*)?getenv\s*\(")


def check_l1(ft: FileText):
    if ft.path in GETENV_EXEMPT_FILES:
        return
    for i, line in enumerate(ft.code):
        if GETENV_RE.search(line):
            yield Finding("l1-getenv", ft.path, i + 1,
                          "raw getenv call outside src/core/env.cpp")


TAINT_SOURCE_RES = (
    re.compile(r"memcpy\s*\(\s*&\s*([A-Za-z_]\w*)"),
    re.compile(r"\b([A-Za-z_]\w*)\s*=\s*[\w:]*\bget(?:_u\d+)?\s*[<(]"),
)
SIZE_CALL_RE = re.compile(r"\.\s*(?:reserve|resize)\s*\(")
COMPARISON_RE = re.compile(r"[<>!=]=|[<>]")


def check_l2(ft: FileText, spans: list[str | None]):
    if not ft.path.endswith((".cpp", ".cc")):
        return
    tainted: set[str] = set()
    prev_fn: str | None = None
    for i, line in enumerate(ft.code):
        if spans[i] != prev_fn:
            tainted.clear()  # new function (or file scope): taint is per-body
            prev_fn = spans[i]
        # Clearing first: `if (n > limit) ...` and `require(n <= ...)` on the
        # taint-introducing line itself would be a check, not a violation.
        cleared = {v for v in tainted
                   if re.search(rf"\b{re.escape(v)}\b", line)
                   and (("require" in line and "(" in line)
                        or (line.lstrip().startswith("if") and COMPARISON_RE.search(line)))}
        tainted -= cleared
        m = SIZE_CALL_RE.search(line)
        if m:
            args = gather_call(ft.code, i, m.end() - 1)
            hit = sorted(v for v in tainted if re.search(rf"\b{re.escape(v)}\b", args))
            if hit:
                yield Finding(
                    "l2-wire-reserve", ft.path, i + 1,
                    f"allocation sized from wire-derived '{hit[0]}' with no "
                    "preceding bounds check")
        for src_re in TAINT_SOURCE_RES:
            for sm in src_re.finditer(line):
                tainted.add(sm.group(1))


def check_l3(ft: FileText, spans: list[str | None]):
    if not ft.path.startswith("src/") or not ft.path.endswith((".cpp", ".cc")):
        return
    for i, line in enumerate(ft.code):
        fn = spans[i]
        if fn is None or not L3_FUNCTION_RE.search(fn.lower()):
            continue
        for m in L3_CALL_RE.finditer(line):
            # Skip definitions/declarations of the primitives themselves.
            if spans[i] == m.group(1):
                continue
            call = gather_call(ft.code, i, m.end() - 1)
            if not re.search(r"[Dd]eadline", call):
                yield Finding(
                    "l3-deadline", ft.path, i + 1,
                    f"{m.group(1)}() inside recovery path '{fn}' has no "
                    "Deadline argument and can block forever")


L7_FUNCTION_RE = re.compile(
    r"resilient|settle|recover|membership|epoch|notice|degraded|repair|incoming")
L7_DECODE_RE = re.compile(r"\bdecode_frame\s*\(")
# Any comparison that mentions an epoch within the window counts as the gate;
# plain assignment (`h.epoch = epoch`) deliberately does not.
L7_EPOCH_WORD_RE = re.compile(r"\bepoch\b|_epoch\b")
L7_WINDOW_LINES = 20


def check_l7(ft: FileText, spans: list[str | None]):
    if not ft.path.startswith("src/") or not ft.path.endswith((".cpp", ".cc")):
        return
    for i, line in enumerate(ft.code):
        fn = spans[i]
        if fn is None or fn == "decode_frame" or not L7_FUNCTION_RE.search(fn.lower()):
            continue
        if not L7_DECODE_RE.search(line):
            continue
        gated = False
        for j in range(i, min(i + L7_WINDOW_LINES, len(ft.code))):
            if spans[j] != fn:
                break
            if L7_EPOCH_WORD_RE.search(ft.code[j]) and COMPARISON_RE.search(ft.code[j]):
                gated = True
                break
        if not gated:
            yield Finding(
                "l7-epoch-check", ft.path, i + 1,
                f"frame decoded inside recovery path '{fn}' is consumed without "
                "comparing its epoch against the current membership")


CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")


def check_l4(ft: FileText, spans: list[str | None]):
    if not ft.path.startswith("src/"):
        return
    for i, line in enumerate(ft.code):
        if CATCH_ALL_RE.search(line):
            if (ft.path, spans[i] or "") in CATCH_ALL_ALLOWLIST:
                continue
            yield Finding("l4-catch-all", ft.path, i + 1,
                          "catch (...) outside the sanctioned Cluster::run "
                          "worker sites swallows protocol errors")


# `friend` is deliberately absent from the qualifier list: a friend
# declaration is not the API surface, its out-of-class declaration is.
L5_DECL_RE = re.compile(
    r"^\s*(?:(?:virtual|static|constexpr|inline|explicit|const)\s+)*"
    rf"(?:[\w:]+::)?\w*{L5_TYPE_SUFFIXES}\s*&?\s+\w+\s*\(")
L5_SKIP_RE = re.compile(r"^\s*(struct|class|enum|using|typedef|template|return)\b")
NODISCARD_RE = re.compile(r"\[\[\s*nodiscard\s*\]\]")


RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(thread|jthread|mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
    r"condition_variable|condition_variable_any|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock)\b")


def check_l6(ft: FileText):
    if ft.path in RAW_SYNC_EXEMPT_FILES or \
            any(ft.path.startswith(p) for p in RAW_SYNC_EXEMPT_PREFIXES):
        return
    for i, line in enumerate(ft.code):
        m = RAW_SYNC_RE.search(line)
        if m:
            yield Finding("l6-raw-sync", ft.path, i + 1,
                          f"raw std::{m.group(1)} bypasses the annotated, "
                          "verify-instrumented core/sync.hpp wrappers")


def check_l5(ft: FileText):
    if not ft.path.endswith((".hpp", ".h")):
        return
    if not (ft.path.startswith("src/") or ft.path.startswith("bench/")):
        return
    for i, line in enumerate(ft.code):
        if L5_SKIP_RE.match(line) or not L5_DECL_RE.match(line):
            continue
        prev = ft.code[i - 1] if i > 0 else ""
        if NODISCARD_RE.search(line) or NODISCARD_RE.search(prev):
            continue
        yield Finding("l5-nodiscard", ft.path, i + 1,
                      "status/stats-returning API is not [[nodiscard]]")


def lint_file(ft: FileText, repo_root: str, engine: str,
              compile_db: str | None) -> tuple[list[Finding], list[Finding]]:
    """Returns (reported, suppressed) findings for one file."""
    spans = None
    if engine == "clang" and ft.path.endswith((".cpp", ".cc")):
        spans = try_clang_spans(ft, repo_root, compile_db)
    if spans is None:
        spans = function_spans(ft.code)

    raw: list[Finding] = []
    raw.extend(check_l1(ft))
    raw.extend(check_l2(ft, spans))
    raw.extend(check_l3(ft, spans))
    raw.extend(check_l4(ft, spans))
    raw.extend(check_l5(ft))
    raw.extend(check_l6(ft))
    raw.extend(check_l7(ft, spans))
    for bad in ft.bad_allows:
        raw.append(Finding("suppression", ft.path, bad + 1,
                           "stfw-lint: allow(...) without a `-- reason`"))

    reported, suppressed = [], []
    for f in raw:
        idx = f.line - 1
        allowed = ft.allows.get(idx, set()) | ft.allows.get(idx - 1, set())
        if f.rule in allowed:
            suppressed.append(f)
        else:
            reported.append(f)
    return reported, suppressed


# --- file discovery ----------------------------------------------------------

def discover_files(repo_root: str) -> list[str]:
    out: list[str] = []
    for top in SCAN_DIRS:
        base = os.path.join(repo_root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(SOURCE_EXTS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), repo_root)
                rel = rel.replace(os.sep, "/")
                if any(rel.startswith(p) for p in EXCLUDE_PREFIXES):
                    continue
                out.append(rel)
    return out


def corpus_files(repo_root: str) -> list[str]:
    base = os.path.join(repo_root, "tests", "lint_corpus")
    out = []
    for dirpath, _d, filenames in os.walk(base):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTS):
                rel = os.path.relpath(os.path.join(dirpath, name), repo_root)
                out.append(rel.replace(os.sep, "/"))
    return out


def run_selftest(repo_root: str, engine: str, compile_db: str | None) -> int:
    files = corpus_files(repo_root)
    if not files:
        print("stfw-lint: selftest FAILED: tests/lint_corpus/ holds no sources")
        return 1
    failures = 0
    total_expected = 0
    for rel in files:
        # The corpus simulates tree paths: strip the corpus prefix so path-
        # scoped rules (src/ only, core/env exemption) see the intended path.
        ft = load_file(repo_root, rel)
        ft.path = re.sub(r"^tests/lint_corpus/", "", ft.path)
        reported, _suppressed = lint_file(ft, repo_root, engine, compile_db)
        got = {}
        for f in reported:
            got.setdefault(f.line - 1, set()).add(f.rule)
        want = ft.expects
        total_expected += sum(len(v) for v in want.values())
        for line_idx in sorted(set(want) | set(got)):
            missing = want.get(line_idx, set()) - got.get(line_idx, set())
            extra = got.get(line_idx, set()) - want.get(line_idx, set())
            for rule in sorted(missing):
                print(f"selftest MISS  {rel}:{line_idx + 1}: expected {rule}, "
                      "not flagged")
                failures += 1
            for rule in sorted(extra):
                print(f"selftest EXTRA {rel}:{line_idx + 1}: flagged {rule}, "
                      "not expected")
                failures += 1
    if failures:
        print(f"stfw-lint: selftest FAILED ({failures} mismatches over "
              f"{len(files)} corpus files)")
        return 1
    print(f"stfw-lint: selftest OK ({total_expected} seeded violations across "
          f"{len(files)} corpus files all flagged; no extras)")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="stfw_lint.py", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files to lint (repo-relative); default: the tracked "
                         "src/tests/tools/bench/examples tree")
    ap.add_argument("--repo-root", default=None,
                    help="repository root (default: parent of this script)")
    ap.add_argument("--compile-db", default=None,
                    help="compile_commands.json for the clang engine "
                         "(e.g. build-tidy/compile_commands.json)")
    ap.add_argument("--engine", choices=("text", "clang"), default="text",
                    help="analysis engine (clang falls back to text when "
                         "libclang is unavailable)")
    ap.add_argument("--report", default=None,
                    help="write a JSON report of findings to this path")
    ap.add_argument("--selftest", action="store_true",
                    help="verify every seeded violation in tests/lint_corpus/ "
                         "is flagged")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    repo_root = args.repo_root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.list_rules:
        for rule, (summary, fixit) in RULES.items():
            print(f"{rule}: {summary}\n    fix-it: {fixit}")
        return 0

    if args.selftest:
        return run_selftest(repo_root, args.engine, args.compile_db)

    files = args.paths or discover_files(repo_root)
    all_reported: list[Finding] = []
    all_suppressed: list[Finding] = []
    for rel in files:
        rel = rel.replace(os.sep, "/")
        if not os.path.isfile(os.path.join(repo_root, rel)):
            print(f"stfw-lint: no such file: {rel}", file=sys.stderr)
            return 2
        if not rel.endswith(SOURCE_EXTS) or \
                any(rel.startswith(p) for p in EXCLUDE_PREFIXES):
            continue
        reported, suppressed = lint_file(load_file(repo_root, rel), repo_root,
                                         args.engine, args.compile_db)
        all_reported.extend(reported)
        all_suppressed.extend(suppressed)

    for f in all_reported:
        print(f.render())

    if args.report:
        payload = {
            "tool": "stfw-lint",
            "engine": args.engine,
            "files_scanned": len(files),
            "findings": [vars(f) | {"fixit": RULES.get(f.rule, ("", ""))[1]}
                         for f in all_reported],
            "suppressed": [vars(f) for f in all_suppressed],
        }
        with open(args.report, "w", encoding="utf-8") as out:
            json.dump(payload, out, indent=2)
            out.write("\n")

    if all_reported:
        print(f"stfw-lint: {len(all_reported)} finding(s) in {len(files)} files "
              f"({len(all_suppressed)} suppressed with documented reasons)")
        return 1
    print(f"stfw-lint: clean ({len(files)} files, "
          f"{len(all_suppressed)} documented suppressions)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
